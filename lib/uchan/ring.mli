(** Single-producer single-consumer ring of fixed-size message slots,
    modelling the memory shared between kernel and driver process
    (paper §3.1.2).  Pure data structure — notification is layered on top
    by {!Uchan}. *)

type t

val create : slots:int -> t
(** [slots] must be a power of two. *)

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val try_push : t -> bytes -> bool
(** False when full.  The slot bytes are copied in. *)

val try_pop : t -> bytes option
(** The returned bytes are a fresh copy the caller may retain. *)

(** {1 Borrowed-slot (zero-copy) API}

    The callback receives the ring's own {!Msg.slot_size}-byte slot buffer;
    it is only valid for the duration of the call and must not be retained
    — the slot is recycled as the ring wraps.  Callers that need to keep
    the bytes use {!try_push}/{!try_pop} instead. *)

val push_inplace : t -> (bytes -> unit) -> bool
(** Marshal directly into the next free slot.  False (writer not called)
    when full.  The writer sees the slot's previous contents; it must
    overwrite every byte it later wants read. *)

val pop_inplace : t -> (bytes -> 'a) -> 'a option
(** Decode directly out of the oldest slot; the slot is released when the
    reader returns.  [None] (reader not called) when empty. *)

val peek : t -> bytes option
