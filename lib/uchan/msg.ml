type t = {
  kind : int;
  seq : int;
  args : int array;
  payload : bytes;
  buf : int;
}

let slot_size = 128
let max_args = 6

(* kind(2) seq(4) buf(4) nargs(1) plen(1) args(8*6) = 60 bytes of header *)
let header = 60
let max_payload = slot_size - header

let make ?(seq = 0) ?(args = []) ?(payload = Bytes.empty) ?(buf = -1) ~kind () =
  if List.length args > max_args then invalid_arg "Msg.make: too many args";
  if Bytes.length payload > max_payload then invalid_arg "Msg.make: payload too large";
  { kind; seq; args = Array.of_list args; payload; buf }

(* Marshal into a caller-supplied slot (e.g. a ring slot borrowed via
   {!Ring.push_inplace}) without allocating.  Only the bytes the format
   says are live get written: a reused slot may keep stale garbage past
   [plen] and [nargs], which [unmarshal]/[unmarshal_view] never read. *)
let marshal_into t b =
  if Array.length t.args > max_args then invalid_arg "Msg.marshal: too many args";
  if Bytes.length t.payload > max_payload then invalid_arg "Msg.marshal: payload too large";
  if Bytes.length b < slot_size then invalid_arg "Msg.marshal_into: slot too small";
  Bytes.set_uint16_le b 0 (t.kind land 0xFFFF);
  Bytes.set_int32_le b 2 (Int32.of_int t.seq);
  Bytes.set_int32_le b 6 (Int32.of_int t.buf);
  Bytes.set b 10 (Char.chr (Array.length t.args));
  Bytes.set b 11 (Char.chr (Bytes.length t.payload));
  Array.iteri (fun i v -> Bytes.set_int64_le b (12 + (8 * i)) (Int64.of_int v)) t.args;
  Bytes.blit t.payload 0 b header (Bytes.length t.payload)

let marshal t =
  let b = Bytes.make slot_size '\000' in
  marshal_into t b;
  b

(* Decode from a borrowed slot.  The payload is still copied out (the slot
   is recycled under us), but the empty-payload common case allocates no
   payload at all and the caller skips the 128-byte slot copy. *)
let unmarshal_view b =
  if Bytes.length b < slot_size then Error "bad slot size"
  else begin
    let nargs = Char.code (Bytes.get b 10) in
    let plen = Char.code (Bytes.get b 11) in
    if nargs > max_args then Error "bad arg count"
    else if plen > max_payload then Error "bad payload length"
    else
      Ok
        { kind = Bytes.get_uint16_le b 0;
          seq = Int32.to_int (Bytes.get_int32_le b 2);
          buf = Int32.to_int (Bytes.get_int32_le b 6);
          args = Array.init nargs (fun i -> Int64.to_int (Bytes.get_int64_le b (12 + (8 * i))));
          payload = (if plen = 0 then Bytes.empty else Bytes.sub b header plen) }
  end

let unmarshal b =
  if Bytes.length b <> slot_size then Error "bad slot size" else unmarshal_view b

let arg t i = if i >= 0 && i < Array.length t.args then t.args.(i) else 0
