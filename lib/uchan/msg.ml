type t = {
  kind : int;
  seq : int;
  epoch : int;
  args : int array;
  payload : bytes;
  buf : int;
}

let slot_size = 128
let max_args = 6
let max_epoch = 0xFFFF

(* kind(2) seq(4) buf(4) nargs(1) plen(1) epoch(2) args(8*6) = 62 bytes of
   header.  The epoch is the channel generation stamp: the kernel side
   rejects slots whose epoch does not match the live channel's, so frames
   replayed from a dead driver generation are detected at ingress instead
   of being confused for fresh traffic. *)
let header = 62
let max_payload = slot_size - header

let make ?(seq = 0) ?(epoch = 0) ?(args = []) ?(payload = Bytes.empty) ?(buf = -1) ~kind () =
  if List.length args > max_args then invalid_arg "Msg.make: too many args";
  if Bytes.length payload > max_payload then invalid_arg "Msg.make: payload too large";
  if epoch < 0 || epoch > max_epoch then invalid_arg "Msg.make: epoch out of range";
  { kind; seq; epoch; args = Array.of_list args; payload; buf }

(* Marshal into a caller-supplied slot (e.g. a ring slot borrowed via
   {!Ring.push_inplace}) without allocating.  Only the bytes the format
   says are live get written: a reused slot may keep stale garbage past
   [plen] and [nargs], which [unmarshal]/[unmarshal_view] never read. *)
let marshal_into t b =
  if Array.length t.args > max_args then invalid_arg "Msg.marshal: too many args";
  if Bytes.length t.payload > max_payload then invalid_arg "Msg.marshal: payload too large";
  if Bytes.length b < slot_size then invalid_arg "Msg.marshal_into: slot too small";
  Bytes.set_uint16_le b 0 (t.kind land 0xFFFF);
  Bytes.set_int32_le b 2 (Int32.of_int t.seq);
  Bytes.set_int32_le b 6 (Int32.of_int t.buf);
  Bytes.set b 10 (Char.chr (Array.length t.args));
  Bytes.set b 11 (Char.chr (Bytes.length t.payload));
  Bytes.set_uint16_le b 12 (t.epoch land max_epoch);
  Array.iteri (fun i v -> Bytes.set_int64_le b (14 + (8 * i)) (Int64.of_int v)) t.args;
  Bytes.blit t.payload 0 b header (Bytes.length t.payload)

let marshal t =
  let b = Bytes.make slot_size '\000' in
  marshal_into t b;
  b

(* Decode from a borrowed slot.  The payload is still copied out (the slot
   is recycled under us), but the empty-payload common case allocates no
   payload at all and the caller skips the 128-byte slot copy. *)
let unmarshal_view b =
  if Bytes.length b < slot_size then Error "bad slot size"
  else begin
    let nargs = Char.code (Bytes.get b 10) in
    let plen = Char.code (Bytes.get b 11) in
    if nargs > max_args then Error "bad arg count"
    else if plen > max_payload then Error "bad payload length"
    else
      Ok
        { kind = Bytes.get_uint16_le b 0;
          seq = Int32.to_int (Bytes.get_int32_le b 2);
          buf = Int32.to_int (Bytes.get_int32_le b 6);
          epoch = Bytes.get_uint16_le b 12;
          args = Array.init nargs (fun i -> Int64.to_int (Bytes.get_int64_le b (14 + (8 * i))));
          payload = (if plen = 0 then Bytes.empty else Bytes.sub b header plen) }
  end

let unmarshal b =
  if Bytes.length b <> slot_size then Error "bad slot size" else unmarshal_view b

let arg t i = if i >= 0 && i < Array.length t.args then t.args.(i) else 0

(* ---- scatter-gather batch slots ----

   N small same-kind messages packed into one ring slot, so a burst of
   per-frame downcalls (netif_rx, tx_free, ...) pays one marshal + one
   message charge instead of N.  A batch slot is distinguished from a
   scalar slot by a magic byte in the nargs position (offset 10): the
   magic is far above [max_args], so the scalar unmarshaller can never
   confuse one for the other, and [Msg.make] can never produce it.

   Layout: kind(2,u16le)@0 count(1)@2 epoch(2,u16le)@3 zeros@5..9
   magic(1)@10 zero@11, then [count] 8-byte entries:
   a0(4,u32le) a1(2,u16le) chk(2,u16le).
   The per-entry checksum lets the kernel drop exactly the entries a
   malicious driver garbled while still delivering their siblings. *)
module Batch = struct
  let magic = 0xB7
  let entry_size = 8
  let hdr_size = 12
  let max_frames = (slot_size - hdr_size) / entry_size

  (* Not a plain XOR fold: an all-0xFF (or all-zero) garbled entry must
     fail the check, so mix in an asymmetric constant. *)
  let chk a0 a1 = (a0 + a1 + 0xA5) land 0xFFFF

  (* A message is batchable when it is asynchronous, carries no payload
     or shared buffer, and its (at most two) arguments fit the compact
     u32/u16 entry encoding. *)
  let fits m =
    m.seq = 0 && m.buf = -1
    && Bytes.length m.payload = 0
    && Array.length m.args <= 2
    && m.kind >= 0 && m.kind < 0x8000
    && (let a0 = arg m 0 and a1 = arg m 1 in
        a0 >= 0 && a0 <= 0xFFFF_FFFF && a1 >= 0 && a1 <= 0xFFFF)

  let is_batch b = Bytes.length b >= slot_size && Char.code (Bytes.get b 10) = magic

  let marshal_into ?(epoch = 0) ~kind entries b =
    let n = Array.length entries in
    if n = 0 || n > max_frames then invalid_arg "Msg.Batch.marshal_into: bad frame count";
    if Bytes.length b < slot_size then invalid_arg "Msg.Batch.marshal_into: slot too small";
    if epoch < 0 || epoch > max_epoch then invalid_arg "Msg.Batch.marshal_into: epoch out of range";
    Bytes.set_uint16_le b 0 (kind land 0xFFFF);
    Bytes.set b 2 (Char.chr n);
    Bytes.set_uint16_le b 3 epoch;
    Bytes.fill b 5 5 '\000';
    Bytes.set b 10 (Char.chr magic);
    Bytes.set b 11 '\000';
    Array.iteri
      (fun i (a0, a1) ->
         if a0 < 0 || a0 > 0xFFFF_FFFF || a1 < 0 || a1 > 0xFFFF then
           invalid_arg "Msg.Batch.marshal_into: entry out of range";
         let off = hdr_size + (entry_size * i) in
         Bytes.set_int32_le b off (Int32.of_int a0);
         Bytes.set_uint16_le b (off + 4) a1;
         Bytes.set_uint16_le b (off + 6) (chk a0 a1))
      entries

  (* Garble entry [i] in a marshalled batch slot (fault injection): the
     per-entry checksum no longer matches, so the kernel-side decode
     rejects exactly this frame. *)
  let corrupt_entry b i =
    let off = hdr_size + (entry_size * i) in
    if off + entry_size <= Bytes.length b then Bytes.fill b off entry_size '\xff'

  (* Defensive decode of a borrowed batch slot.  The count byte and each
     entry checksum come from the untrusted driver: a wild count is a
     malformed slot, a bad entry checksum drops just that entry. *)
  let unmarshal_view b =
    if Bytes.length b < slot_size then Error "bad slot size"
    else if Char.code (Bytes.get b 10) <> magic then Error "not a batch slot"
    else begin
      let n = Char.code (Bytes.get b 2) in
      if n = 0 || n > max_frames then Error "bad batch count"
      else begin
        let kind = Bytes.get_uint16_le b 0 in
        let epoch = Bytes.get_uint16_le b 3 in
        let entries =
          List.init n (fun i ->
              let off = hdr_size + (entry_size * i) in
              let a0 = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFF_FFFF in
              let a1 = Bytes.get_uint16_le b (off + 4) in
              let stored = Bytes.get_uint16_le b (off + 6) in
              if stored = chk a0 a1 then Ok (a0, a1) else Error "bad entry checksum")
        in
        Ok (kind, epoch, entries)
      end
    end
end
