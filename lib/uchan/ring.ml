type t = {
  slots : bytes array;
  mask : int;
  mutable head : int;   (* next write position (producer) *)
  mutable tail : int;   (* next read position (consumer) *)
}

let create ~slots =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Ring.create: slots must be a positive power of two";
  { slots = Array.init slots (fun _ -> Bytes.make Msg.slot_size '\000'); mask = slots - 1; head = 0; tail = 0 }

let capacity t = Array.length t.slots
let length t = t.head - t.tail
let is_empty t = t.head = t.tail
let is_full t = length t = capacity t

let try_push t b =
  if is_full t then false
  else begin
    let slot = t.slots.(t.head land t.mask) in
    Bytes.blit b 0 slot 0 (min (Bytes.length b) Msg.slot_size);
    t.head <- t.head + 1;
    true
  end

let push_inplace t writer =
  if is_full t then false
  else begin
    writer t.slots.(t.head land t.mask);
    t.head <- t.head + 1;
    true
  end

let try_pop t =
  if is_empty t then None
  else begin
    let slot = Bytes.copy t.slots.(t.tail land t.mask) in
    t.tail <- t.tail + 1;
    Some slot
  end

let pop_inplace t reader =
  if is_empty t then None
  else begin
    let v = reader t.slots.(t.tail land t.mask) in
    t.tail <- t.tail + 1;
    Some v
  end

let peek t = if is_empty t then None else Some (Bytes.copy t.slots.(t.tail land t.mask))
