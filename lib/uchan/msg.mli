(** Uchan messages ([msg_t] in the paper).

    A message carries an opcode, a correlation sequence number (0 for
    asynchronous messages), up to {!max_args} integer arguments, an
    optional small inline payload and an optional shared-buffer
    reference.  Messages are marshalled into fixed {!slot_size}-byte ring
    slots — bulk data never travels inline; it goes through shared
    buffers ({!Bufpool}). *)

type t = {
  kind : int;             (** RPC opcode, proxy-class specific *)
  seq : int;              (** correlation id; 0 = asynchronous *)
  args : int array;       (** at most {!max_args} entries *)
  payload : bytes;        (** inline payload, at most {!max_payload} *)
  buf : int;              (** shared buffer id, or -1 *)
}

val slot_size : int
val max_args : int
val max_payload : int

val make : ?seq:int -> ?args:int list -> ?payload:bytes -> ?buf:int -> kind:int -> unit -> t

val marshal : t -> bytes
(** Raises [Invalid_argument] if the message exceeds the slot format. *)

val marshal_into : t -> bytes -> unit
(** Zero-copy variant: marshal into the first {!slot_size} bytes of a
    caller-supplied buffer (typically a ring slot borrowed through
    {!Ring.push_inplace}), allocating nothing.  Stale bytes beyond the
    encoded payload/args are left in place — the unmarshallers never read
    them.  Raises [Invalid_argument] if the message exceeds the slot
    format or the buffer is shorter than {!slot_size}. *)

val unmarshal : bytes -> (t, string) result
(** Defensive: a malicious driver writes arbitrary bytes into the shared
    ring, so unmarshalling validates every length field. *)

val unmarshal_view : bytes -> (t, string) result
(** Like {!unmarshal} but for a borrowed slot (from {!Ring.pop_inplace}):
    accepts any buffer of at least {!slot_size} bytes and copies only the
    live payload out, sharing the empty payload when there is none.  The
    returned message owns no part of [b]. *)

val arg : t -> int -> int
(** [arg t i] with a 0 default for missing arguments. *)
