(** Uchan messages ([msg_t] in the paper).

    A message carries an opcode, a correlation sequence number (0 for
    asynchronous messages), a channel-generation epoch, up to {!max_args}
    integer arguments, an optional small inline payload and an optional
    shared-buffer reference.  Messages are marshalled into fixed
    {!slot_size}-byte ring slots — bulk data never travels inline; it
    goes through shared buffers ({!Bufpool}). *)

type t = {
  kind : int;             (** RPC opcode, proxy-class specific *)
  seq : int;              (** correlation id; 0 = asynchronous *)
  epoch : int;            (** channel generation stamp (u16); see {!Conformance} *)
  args : int array;       (** at most {!max_args} entries *)
  payload : bytes;        (** inline payload, at most {!max_payload} *)
  buf : int;              (** shared buffer id, or -1 *)
}

val slot_size : int
val max_args : int
val max_payload : int

val max_epoch : int
(** Epochs are 16-bit on the wire; generation numbers wrap modulo
    [max_epoch + 1]. *)

val make :
  ?seq:int -> ?epoch:int -> ?args:int list -> ?payload:bytes -> ?buf:int ->
  kind:int -> unit -> t

val marshal : t -> bytes
(** Raises [Invalid_argument] if the message exceeds the slot format. *)

val marshal_into : t -> bytes -> unit
(** Zero-copy variant: marshal into the first {!slot_size} bytes of a
    caller-supplied buffer (typically a ring slot borrowed through
    {!Ring.push_inplace}), allocating nothing.  Stale bytes beyond the
    encoded payload/args are left in place — the unmarshallers never read
    them.  Raises [Invalid_argument] if the message exceeds the slot
    format or the buffer is shorter than {!slot_size}. *)

val unmarshal : bytes -> (t, string) result
(** Defensive: a malicious driver writes arbitrary bytes into the shared
    ring, so unmarshalling validates every length field. *)

val unmarshal_view : bytes -> (t, string) result
(** Like {!unmarshal} but for a borrowed slot (from {!Ring.pop_inplace}):
    accepts any buffer of at least {!slot_size} bytes and copies only the
    live payload out, sharing the empty payload when there is none.  The
    returned message owns no part of [b]. *)

val arg : t -> int -> int
(** [arg t i] with a 0 default for missing arguments. *)

(** Scatter-gather batch slots: N small same-kind asynchronous messages
    packed into one ring slot, so a burst of per-frame downcalls pays
    one marshal and one message charge instead of N.  Batch slots are
    distinguished from scalar slots by a magic byte in the nargs
    position, which the scalar unmarshaller always rejects.  Each
    compact entry carries two arguments (u32/u16) and a per-entry
    checksum so the kernel can drop exactly the entries a malicious
    driver garbled while still delivering their siblings. *)
module Batch : sig
  val max_frames : int
  (** Frames per slot with the 8-byte entry encoding (14 for 128-byte
      slots). *)

  val fits : t -> bool
  (** A message is batchable when it is asynchronous ([seq = 0]),
      carries no payload or shared buffer, and its (at most two)
      arguments fit the u32/u16 entry encoding. *)

  val is_batch : bytes -> bool
  (** Cheap discriminator for a borrowed ring slot. *)

  val marshal_into : ?epoch:int -> kind:int -> (int * int) array -> bytes -> unit
  (** [marshal_into ?epoch ~kind entries slot] packs [entries] (each an
      [(a0, a1)] argument pair) into [slot], stamping the channel
      [epoch] (default 0).  Raises [Invalid_argument] on an empty or
      oversized batch or an out-of-range argument. *)

  val corrupt_entry : bytes -> int -> unit
  (** Fault injection: garble entry [i] of a marshalled batch slot so
      its checksum no longer verifies. *)

  val unmarshal_view : bytes -> (int * int * (int * int, string) result list, string) result
  (** Defensive decode of a borrowed slot: returns the shared kind, the
      stamped epoch, and one result per entry — [Error] for entries
      whose checksum fails (the siblings still decode).  The slot-level
      [Error] cases are a non-batch slot or a wild count byte. *)
end
