type acs = { mutable source_validation : bool; mutable p2p_redirect : bool }

type switch = {
  sname : string;
  sacs : acs;
  parent : switch option;         (* None = the root complex *)
  bus : int;
  mutable next_dev : int;
}

type attached = {
  dev : Device.t;
  abdf : Bus.bdf;
  sw : switch;
  mmio_bars : (int * int * int) list;  (* (bar, base, size) *)
  io_bars : (int * int * int) list;    (* (bar, port_base, len) *)
}

type t = {
  mem : Phys_mem.t;
  iommu : Iommu.t;
  ioports : Ioport.t;
  root : switch;
  mutable sws : switch list;
  mutable next_bus : int;
  mutable devs : attached list;
  mutable next_mmio : int;
  mutable next_io : int;
  mutable msi_sink : (source:Bus.bdf -> vector:int -> unit) option;
  mutable dma_charge : ([ `Hit | `Walk | `Bypass ] -> unit) option;
  mutable flt : Bus.fault list;   (* newest first *)
  pm : metrics;
}
and metrics = {
  pm_p2p : Sud_obs.Metrics.counter;
  pm_msi : Sud_obs.Metrics.counter;
  pm_ir_blocked : Sud_obs.Metrics.counter;
}

(* MMIO windows are carved from high physical space, well above any RAM the
   simulator allocates, so BAR addresses and DMA-able RAM never collide. *)
let mmio_window_base = 0xE000_0000
let io_window_base = 0xC000

let create ~mem ~iommu ~ioports () =
  let root = { sname = "root-complex"; sacs = { source_validation = false; p2p_redirect = false }; parent = None; bus = 0; next_dev = 0 } in
  { mem;
    iommu;
    ioports;
    root;
    sws = [ root ];
    next_bus = 1;
    devs = [];
    next_mmio = mmio_window_base;
    next_io = io_window_base;
    msi_sink = None;
    dma_charge = None;
    flt = [];
    pm =
      (let c name = Sud_obs.Metrics.counter ~subsystem:"pci" ~name () in
       { pm_p2p = c "p2p_delivered";
         pm_msi = c "msi_delivered";
         pm_ir_blocked = c "msi_blocked_by_ir" }) }

let root_switch t = t.root

let add_switch t ~parent ~name =
  let sw = { sname = name; sacs = { source_validation = false; p2p_redirect = false }; parent = Some parent; bus = t.next_bus; next_dev = 0 } in
  t.next_bus <- t.next_bus + 1;
  t.sws <- sw :: t.sws;
  sw

let switch_name sw = sw.sname
let acs sw = sw.sacs
let switches t = List.rev t.sws

let enable_acs_everywhere t =
  List.iter
    (fun sw ->
       sw.sacs.source_validation <- true;
       sw.sacs.p2p_redirect <- true)
    t.sws

let devices t = List.rev_map (fun a -> a.dev) t.devs
let find_attached t bdf = List.find_opt (fun a -> a.abdf = bdf) t.devs
let find_device t bdf = Option.map (fun a -> a.dev) (find_attached t bdf)

let device_switch t bdf =
  match find_attached t bdf with
  | Some a -> a.sw
  | None -> invalid_arg "Pci_topology.device_switch: unknown device"

let set_msi_sink t sink = t.msi_sink <- Some sink
let set_dma_charge t f = t.dma_charge <- Some f

let record_fault t f = t.flt <- f :: t.flt

(* Path from a device's switch up to (excluding) the root pseudo-switch's
   parent: immediate switch first. *)
let rec switch_path sw = sw :: (match sw.parent with None -> [] | Some p -> switch_path p)

let alloc_aligned next size =
  let base = (next + size - 1) land lnot (size - 1) in
  (base, base + size)

(* ---- CPU-side decode tables ---- *)

let mmio_target t addr =
  List.find_map
    (fun a ->
       List.find_map
         (fun (bar, base, size) ->
            if addr >= base && addr < base + size then Some (a, bar, addr - base) else None)
         a.mmio_bars)
    t.devs

let mmio_read t ~addr ~size =
  match mmio_target t addr with
  | Some (a, bar, off) when Pci_cfg.command_has (Device.cfg a.dev) Pci_cfg.cmd_mem_enable ->
    (Device.ops a.dev).mmio_read ~bar ~off ~size
  | Some _ | None -> raise (Phys_mem.Bus_error addr)

let mmio_write t ~addr ~size v =
  match mmio_target t addr with
  | Some (a, bar, off) when Pci_cfg.command_has (Device.cfg a.dev) Pci_cfg.cmd_mem_enable ->
    (Device.ops a.dev).mmio_write ~bar ~off ~size v
  | Some _ | None -> raise (Phys_mem.Bus_error addr)

(* ---- Device-initiated transactions ---- *)

let deliver_msi t ~source ~data =
  let vector = data land 0xff in
  if Iommu.ir_check t.iommu ~source ~vector then begin
    Sud_obs.Metrics.incr t.pm.pm_msi;
    match t.msi_sink with
    | Some sink -> sink ~source ~vector
    | None -> ()
  end
  else begin
    Sud_obs.Metrics.incr t.pm.pm_ir_blocked;
    record_fault t (Bus.Ir_blocked { source; vector })
  end

(* Check ACS source validation at the requester's upstream port. *)
let source_ok t requester ~claimed =
  let sw = requester.sw in
  if sw.sacs.source_validation && claimed <> requester.abdf then begin
    let f = Bus.Source_invalid { claimed; port = requester.abdf } in
    record_fault t f;
    Error f
  end
  else Ok ()

(* Find a peer whose MMIO BAR claims [addr] and whose lowest common ancestor
   switch with the requester does not redirect P2P requests upward. *)
let p2p_victim t requester addr =
  match mmio_target t addr with
  | Some (victim, bar, off) when victim.abdf <> requester.abdf ->
    let req_path = switch_path requester.sw in
    let vic_path = switch_path victim.sw in
    let lca = List.find_opt (fun sw -> List.memq sw vic_path) req_path in
    (match lca with
     | Some sw when not sw.sacs.p2p_redirect -> Some (victim, bar, off)
     | Some _ | None -> None)
  | Some _ | None -> None

(* Every DMA that reaches the root complex pays for its translation: an
   IOTLB hit is nearly free, a page-table walk is not, passthrough costs
   nothing extra.  The sink (installed by the kernel) maps the outcome to
   Cost_model charges, so Figure 8 reflects the cache. *)
let translate_charged t ~source ~addr ~dir =
  let result, how = Iommu.translate_info t.iommu ~source ~addr ~dir in
  (match t.dma_charge with Some f -> f how | None -> ());
  result

let dma_common t ~source ~addr ~dir k_peer k_phys k_msi =
  match find_attached t source with
  | None ->
    (* A spoofed requester ID that got past validation: translate under the
       claimed source's IOMMU domain. *)
    (match translate_charged t ~source ~addr ~dir with
     | `Phys p -> k_phys p
     | `Msi -> k_msi ()
     | `Fault f -> Error f)
  | Some requester ->
    (match p2p_victim t requester addr with
     | Some (victim, bar, off) ->
       Sud_obs.Metrics.incr t.pm.pm_p2p;
       k_peer victim bar off
     | None ->
       (match translate_charged t ~source ~addr ~dir with
        | `Phys p -> k_phys p
        | `Msi -> k_msi ()
        | `Fault f -> Error f))

let host_iface_for t att =
  let dma_read ~source ~addr ~len =
    match source_ok t att ~claimed:source with
    | Error f -> Error f
    | Ok () ->
      dma_common t ~source ~addr ~dir:Bus.Dma_read
        (fun victim bar off ->
           (* Peer-to-peer read: pull bytes out of the victim's registers. *)
           let b = Bytes.create len in
           for i = 0 to len - 1 do
             Bytes.set b i
               (Char.chr ((Device.ops victim.dev).mmio_read ~bar ~off:(off + i) ~size:1 land 0xff))
           done;
           Ok b)
        (fun p ->
           match Phys_mem.read t.mem ~addr:p ~len with
           | b -> Ok b
           | exception Phys_mem.Bus_error _ ->
             record_fault t (Bus.Bus_abort { addr });
             Error (Bus.Bus_abort { addr }))
        (fun () ->
           record_fault t (Bus.Bus_abort { addr });
           Error (Bus.Bus_abort { addr }))
  in
  let dma_write ~source ~addr ~data =
    match source_ok t att ~claimed:source with
    | Error f -> Error f
    | Ok () ->
      dma_common t ~source ~addr ~dir:Bus.Dma_write
        (fun victim bar off ->
           Bytes.iteri
             (fun i c ->
                (Device.ops victim.dev).mmio_write ~bar ~off:(off + i) ~size:1 (Char.code c))
             data;
           Ok ())
        (fun p ->
           match Phys_mem.write t.mem ~addr:p data with
           | () -> Ok ()
           | exception Phys_mem.Bus_error _ ->
             record_fault t (Bus.Bus_abort { addr });
             Error (Bus.Bus_abort { addr }))
        (fun () ->
           if Bytes.length data >= 4 then begin
             deliver_msi t ~source ~data:(Int32.to_int (Bytes.get_int32_le data 0) land 0xFFFFFFFF);
             Ok ()
           end
           else Ok ())
  in
  { Device.dma_read; dma_write }

let attach t ~switch:sw dev =
  if Device.is_attached dev then invalid_arg "Pci_topology.attach: already attached";
  let bdf = Bus.make_bdf ~bus:sw.bus ~dev:sw.next_dev ~fn:0 in
  sw.next_dev <- sw.next_dev + 1;
  let cfg = Device.cfg dev in
  let mmio_bars = ref [] and io_bars = ref [] in
  for bar = 0 to 5 do
    match Pci_cfg.bar_kind cfg bar with
    | Some (Pci_cfg.Mem { size }) ->
      let base, next = alloc_aligned t.next_mmio size in
      t.next_mmio <- next;
      Pci_cfg.set_bar_base cfg bar base;
      mmio_bars := (bar, base, size) :: !mmio_bars
    | Some (Pci_cfg.Io { size }) ->
      let base, next = alloc_aligned t.next_io size in
      t.next_io <- next;
      Pci_cfg.set_bar_base cfg bar base;
      io_bars := (bar, base, size) :: !io_bars
    | None -> ()
  done;
  let att = { dev; abdf = bdf; sw; mmio_bars = List.rev !mmio_bars; io_bars = List.rev !io_bars } in
  List.iter
    (fun (bar, base, len) ->
       Ioport.register t.ioports ~base ~len
         ~read:(fun ~off ~size ->
             if Pci_cfg.command_has cfg Pci_cfg.cmd_io_enable then
               (Device.ops dev).io_read ~bar ~off ~size
             else (1 lsl (size * 8)) - 1)
         ~write:(fun ~off ~size v ->
             if Pci_cfg.command_has cfg Pci_cfg.cmd_io_enable then
               (Device.ops dev).io_write ~bar ~off ~size v))
    att.io_bars;
  t.devs <- att :: t.devs;
  Device.attach_to_host dev ~bdf (host_iface_for t att);
  bdf

let cfg_read t bdf ~off ~size =
  match find_attached t bdf with
  | Some a -> Pci_cfg.read (Device.cfg a.dev) ~off ~size
  | None -> (1 lsl (size * 8)) - 1

let cfg_write t bdf ~off ~size v =
  match find_attached t bdf with
  | Some a -> Pci_cfg.write (Device.cfg a.dev) ~off ~size v
  | None -> ()

let bar_region t bdf ~bar =
  match find_attached t bdf with
  | None -> None
  | Some a ->
    List.find_map (fun (b, base, size) -> if b = bar then Some (base, size) else None) a.mmio_bars

let io_region t bdf ~bar =
  match find_attached t bdf with
  | None -> None
  | Some a ->
    List.find_map (fun (b, base, size) -> if b = bar then Some (base, size) else None) a.io_bars

let routing_faults t = List.rev t.flt
let metrics t = t.pm
let p2p_delivered t = Sud_obs.Metrics.get t.pm.pm_p2p
let msi_delivered t = Sud_obs.Metrics.get t.pm.pm_msi
let msi_blocked_by_ir t = Sud_obs.Metrics.get t.pm.pm_ir_blocked
