(* Flow bytes: both MACs, the ethertype, and the first 5 payload bytes —
   for the sim netstack's wire format that is the protocol byte plus the
   16-bit source and destination ports, so one flow (src, dst, sport,
   dport) always hashes to the same value no matter what it carries. *)
let flow_span = 19

(* FNV-1a, folded to 31 bits so the result is a nonnegative OCaml int. *)
let hash_frame frame =
  let n = min (Bytes.length frame) flow_span in
  let h = ref 0x811c9dc5 in
  for i = 0 to n - 1 do
    h := (!h lxor Char.code (Bytes.get frame i)) * 0x01000193 land 0x7FFFFFFF
  done;
  !h

(* FNV-1a's low bit is a parity function of the input bytes (the odd-prime
   multiply preserves parity), so reducing the raw hash mod a small queue
   count strands correlated flows on same-parity queues.  Per the FNV
   authors' recommendation, xor-fold the high half into the low half
   before reducing. *)
let queue_for ~queues frame =
  if queues <= 1 then 0
  else begin
    let h = hash_frame frame in
    ((h lsr 16) lxor (h land 0xFFFF)) mod queues
  end
