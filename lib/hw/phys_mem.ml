exception Bus_error of int

type t = {
  size : int;
  pages : (int, bytes) Hashtbl.t;
  mutable bump : int;           (* next never-allocated page index *)
  free_runs : (int, int list) Hashtbl.t;  (* run length -> start pages *)
  mutable outstanding : int;
  (* One-entry page cache: DMA is overwhelmingly sequential (descriptor
     rings, packet buffers), so the last page touched answers the next
     access without a Hashtbl lookup.  Pages are never removed from the
     table once materialized, so the cached bytes can never go stale. *)
  mutable last_idx : int;
  mutable last_page : bytes;
}

let create ~size =
  let size = Bus.page_align_up size in
  if size <= 0 then invalid_arg "Phys_mem.create: size must be positive";
  (* The first 64 KiB stay unallocated, like the reserved low memory of a
     real machine — so no DMA structure ever lands at address 0, which
     device schedules use as a null link. *)
  { size; pages = Hashtbl.create 1024; bump = 16; free_runs = Hashtbl.create 8; outstanding = 0;
    last_idx = -1; last_page = Bytes.empty }

let size t = t.size

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then
    raise (Bus_error addr)

let page t idx =
  if idx = t.last_idx then t.last_page
  else begin
    let p =
      match Hashtbl.find_opt t.pages idx with
      | Some p -> p
      | None ->
        let p = Bytes.make Bus.page_size '\000' in
        Hashtbl.add t.pages idx p;
        p
    in
    t.last_idx <- idx;
    t.last_page <- p;
    p
  end

let blit_out t ~addr ~dst ~dst_off ~len =
  check t addr len;
  let in_page = addr land Bus.page_mask in
  if in_page + len <= Bus.page_size then
    (* Single-page fast path: one blit, no loop state. *)
    Bytes.blit (page t (addr / Bus.page_size)) in_page dst dst_off len
  else begin
    let pos = ref addr and off = ref dst_off and left = ref len in
    while !left > 0 do
      let idx = !pos / Bus.page_size and in_page = !pos land Bus.page_mask in
      let chunk = min !left (Bus.page_size - in_page) in
      Bytes.blit (page t idx) in_page dst !off chunk;
      pos := !pos + chunk;
      off := !off + chunk;
      left := !left - chunk
    done
  end

let blit_in t ~addr ~src ~src_off ~len =
  check t addr len;
  let in_page = addr land Bus.page_mask in
  if in_page + len <= Bus.page_size then
    Bytes.blit src src_off (page t (addr / Bus.page_size)) in_page len
  else begin
    let pos = ref addr and off = ref src_off and left = ref len in
    while !left > 0 do
      let idx = !pos / Bus.page_size and in_page = !pos land Bus.page_mask in
      let chunk = min !left (Bus.page_size - in_page) in
      Bytes.blit src !off (page t idx) in_page chunk;
      pos := !pos + chunk;
      off := !off + chunk;
      left := !left - chunk
    done
  end

let read t ~addr ~len =
  let b = Bytes.create len in
  blit_out t ~addr ~dst:b ~dst_off:0 ~len;
  b

let write t ~addr data = blit_in t ~addr ~src:data ~src_off:0 ~len:(Bytes.length data)

let read8 t addr =
  check t addr 1;
  Char.code (Bytes.get (page t (addr / Bus.page_size)) (addr land Bus.page_mask))

let write8 t addr v =
  check t addr 1;
  Bytes.set (page t (addr / Bus.page_size)) (addr land Bus.page_mask) (Char.chr (v land 0xff))

(* Scalar accessors: when the access sits inside one page (the common case
   — descriptors are naturally aligned), use the runtime's little-endian
   primitives on the page directly; fall back to byte assembly only when
   straddling a page boundary. *)

let fits_in_page addr n = addr land Bus.page_mask <= Bus.page_size - n

let read16 t addr =
  if fits_in_page addr 2 then begin
    check t addr 2;
    Bytes.get_uint16_le (page t (addr / Bus.page_size)) (addr land Bus.page_mask)
  end
  else read8 t addr lor (read8 t (addr + 1) lsl 8)

let read32 t addr =
  if fits_in_page addr 4 then begin
    check t addr 4;
    Int32.to_int (Bytes.get_int32_le (page t (addr / Bus.page_size)) (addr land Bus.page_mask))
    land 0xFFFFFFFF
  end
  else read16 t addr lor (read16 t (addr + 2) lsl 16)

let read64 t addr =
  if fits_in_page addr 8 then begin
    check t addr 8;
    Bytes.get_int64_le (page t (addr / Bus.page_size)) (addr land Bus.page_mask)
  end
  else
    Int64.logor
      (Int64.of_int (read32 t addr))
      (Int64.shift_left (Int64.of_int (read32 t (addr + 4))) 32)

let write16 t addr v =
  if fits_in_page addr 2 then begin
    check t addr 2;
    Bytes.set_uint16_le (page t (addr / Bus.page_size)) (addr land Bus.page_mask)
      (v land 0xFFFF)
  end
  else begin
    write8 t addr v;
    write8 t (addr + 1) (v lsr 8)
  end

let write32 t addr v =
  if fits_in_page addr 4 then begin
    check t addr 4;
    Bytes.set_int32_le (page t (addr / Bus.page_size)) (addr land Bus.page_mask)
      (Int32.of_int v)
  end
  else begin
    write16 t addr v;
    write16 t (addr + 2) (v lsr 16)
  end

let write64 t addr v =
  if fits_in_page addr 8 then begin
    check t addr 8;
    Bytes.set_int64_le (page t (addr / Bus.page_size)) (addr land Bus.page_mask) v
  end
  else begin
    write32 t addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
    write32 t (addr + 4) (Int64.to_int (Int64.shift_right_logical v 32))
  end

let fill t ~addr ~len c =
  check t addr len;
  let pos = ref addr and left = ref len in
  while !left > 0 do
    let idx = !pos / Bus.page_size and in_page = !pos land Bus.page_mask in
    let chunk = min !left (Bus.page_size - in_page) in
    Bytes.fill (page t idx) in_page chunk c;
    pos := !pos + chunk;
    left := !left - chunk
  done

let alloc_pages t ~pages =
  if pages <= 0 then invalid_arg "Phys_mem.alloc_pages";
  let start =
    match Hashtbl.find_opt t.free_runs pages with
    | Some (p :: rest) ->
      Hashtbl.replace t.free_runs pages rest;
      p
    | Some [] | None ->
      let p = t.bump in
      if (p + pages) * Bus.page_size > t.size then failwith "Phys_mem: out of physical memory";
      t.bump <- p + pages;
      p
  in
  t.outstanding <- t.outstanding + pages;
  start * Bus.page_size

let free_pages t ~addr ~pages =
  if not (Bus.is_page_aligned addr) then invalid_arg "Phys_mem.free_pages: unaligned";
  fill t ~addr ~len:(pages * Bus.page_size) '\000';
  let start = addr / Bus.page_size in
  let runs = Option.value ~default:[] (Hashtbl.find_opt t.free_runs pages) in
  Hashtbl.replace t.free_runs pages (start :: runs);
  t.outstanding <- t.outstanding - pages

let allocated_pages t = t.outstanding
