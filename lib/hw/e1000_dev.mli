(** Register-level model of an e1000-class Gigabit Ethernet controller.

    Faithful in the ways that matter to SUD: the driver programs TX/RX
    descriptor rings by physical (IO-virtual) address, the device fetches
    descriptors and packet data {e by DMA through the PCIe fabric and
    IOMMU}, and interrupts are MSI messages.  A driver that writes a
    kernel address into a descriptor causes real device-initiated DMA to
    that address — which the IOMMU must catch.

    The register subset (offsets in BAR 0) follows the 8254x datasheet's
    legacy layout: CTRL, STATUS, EERD, ICR/ICS/IMS/IMC, RCTL/TCTL,
    TDBAL..TDT, RDBAL..RDT, RAL/RAH.

    {b Multiqueue}: the device can be created with up to
    {!Regs.max_queues} TX/RX ring pairs.  Queue [q]'s ring registers sit
    at the queue-0 offset plus [q * Regs.queue_stride]; MRQC programs
    how many RX queues the {!Rss} flow hash spreads incoming frames
    over.  With MSI-X enabled, queue [q] signals vector [q] (counted
    per vector, so a storm is attributable to one queue); otherwise all
    causes coalesce onto the legacy ITR-moderated MSI path. *)

module Regs : sig
  val ctrl : int
  val status : int
  val eerd : int
  val icr : int
  val itr : int
  (** Interrupt throttling: minimum gap between MSIs, in 256 ns units
      (0 disables moderation). *)

  val ics : int
  val ims : int
  val imc : int
  val rctl : int
  val tctl : int
  val tdbal : int
  val tdbah : int
  val tdlen : int
  val tdh : int
  val tdt : int
  val rdbal : int
  val rdbah : int
  val rdlen : int
  val rdh : int
  val rdt : int
  val ral0 : int
  val rah0 : int

  val mrqc : int
  (** RSS control: number of active RX queues ([<= 1] disables RSS). *)

  val queue_stride : int
  (** Offset between consecutive queues' ring registers (0x100). *)

  val max_queues : int

  val ctrl_rst : int
  val status_lu : int
  val eerd_start : int
  val eerd_done : int
  val rctl_en : int
  val tctl_en : int

  (** Interrupt cause bits *)

  val int_txdw : int
  val int_lsc : int
  val int_rxt0 : int

  (** Legacy descriptor layout *)

  val desc_size : int
  val txd_cmd_eop : int
  val txd_cmd_rs : int
  val txd_sta_dd : int
  val rxd_sta_dd : int
  val rxd_sta_eop : int
end

type t

val create : Engine.t -> mac:bytes -> medium:Net_medium.t -> ?queues:int -> unit -> t
(** [mac] is 6 bytes, stored in the device EEPROM.  The device attaches a
    station to [medium] immediately (link comes up).  [queues] (default
    1, max {!Regs.max_queues}) is the number of TX/RX ring pairs and
    MSI-X table entries the device advertises. *)

val device : t -> Device.t
val mac : t -> bytes
val queues : t -> int

(** Observability for tests and benches *)

val tx_frames : t -> int
val rx_frames : t -> int
val rx_dropped : t -> int
(** Frames discarded because RX was disabled or the ring had no free
    descriptors. *)

val dma_faults : t -> int
(** Device-side count of DMA transactions that were refused by the fabric
    (IOMMU fault, ACS block, master abort). *)

val msi_raised : t -> int
(** Total interrupt messages raised, legacy MSI and MSI-X combined. *)

val msix_raised : t -> vector:int -> int
(** Messages raised on one MSI-X vector — the per-queue storm ledger. *)

val rx_queue_frames : t -> queue:int -> int
(** Frames the RSS dispatcher landed in one RX queue. *)
