(** IOMMU: per-device IO page tables, translation, IOTLB accounting,
    interrupt remapping.

    Models the two vendor variants the paper discusses:

    - {b Intel VT-d}: every IO page table carries an {e implicit identity
      mapping for the MSI address window} (0xFEE00000–0xFEF00000), so a
      device can always write there — the weakness that left the authors'
      testbed open to DMA-generated interrupt storms.  Optional interrupt
      remapping filters those messages by (source, vector).
    - {b AMD IOMMU}: no implicit MSI mapping; MSI writes pass only if the
      domain explicitly maps the window, so unmapping it silences a rogue
      device.

    Page tables are real two-level structures (10+10+12 bit split over a
    4 GiB IO virtual space); Figure 9 is produced by walking them. *)

type mode =
  | Intel_vtd of { interrupt_remapping : bool }
  | Amd_vi

type t
type domain

val create : mode:mode -> unit -> t
val mode : t -> mode

val attach : t -> source:Bus.bdf -> domain
(** Get-or-create the translation domain for a device.  A fresh domain maps
    nothing (and on AMD, not even the MSI window). *)

val detach : t -> source:Bus.bdf -> unit
(** Remove the device's domain; subsequent DMA faults. *)

val domain_of : t -> source:Bus.bdf -> domain option

val map : t -> domain -> iova:int -> phys:int -> len:int -> writable:bool -> unit
(** Insert 4 KiB-granular mappings.  [iova], [phys] and [len] must be
    page-aligned.  Raises [Invalid_argument] on misalignment or when
    overwriting an existing mapping with a different target. *)

val unmap : t -> domain -> iova:int -> len:int -> unit
(** Remove mappings; missing entries are ignored.  Queues an IOTLB
    invalidation (visible in {!iotlb_flushes}). *)

val translate : t -> source:Bus.bdf -> addr:int -> dir:Bus.dma_dir -> [ `Phys of int | `Msi | `Fault of Bus.fault ]
(** Translate one IO virtual address for the given requester.  [`Msi] means
    the write landed in the MSI window and should be handed to the
    interrupt controller (subject to remapping). *)

val translate_info :
  t -> source:Bus.bdf -> addr:int -> dir:Bus.dma_dir ->
  [ `Phys of int | `Msi | `Fault of Bus.fault ] * [ `Hit | `Walk | `Bypass ]
(** {!translate} plus how the answer was produced, for cost accounting:
    [`Hit] came from the IOTLB, [`Walk] paid the two-level table walk,
    [`Bypass] skipped translation entirely (passthrough / implicit MSI). *)

(** {1 IOTLB}

    A direct-mapped software IOTLB of {!iotlb_slots} entries keyed on
    [(source, iova_page)], consulted before the page-table walk.  Entries
    cache the pte {e including} its writable bit.  The cache is scrubbed on
    {!unmap}, {!detach} and {!iotlb_flush} — a hit after any of those would
    be a stale translation, i.e. a containment hole (the stale-translation
    window the driver-isolation SoK warns about). *)

val iotlb_slots : int

(** {1 Observability}

    All IOMMU counters live in the {!Sud_obs.Metrics} registry under
    subsystem ["iommu"]; the handles are exposed so callers read them
    directly.  With tracing enabled, [map]/[unmap] emit spans and every
    translation fault emits an ["iommu"/"fault"] span parented to the
    uchan RPC that provoked it (ambient span, or the last issued RPC for
    DMA fired from engine callbacks) and remembered under
    ["iommu.fault.last:<bdf>"] for the supervisor to pick up. *)

type metrics = {
  im_hits : Sud_obs.Metrics.gauge;
  im_misses : Sud_obs.Metrics.gauge;
  im_evictions : Sud_obs.Metrics.counter;
  im_flushes : Sud_obs.Metrics.counter;
  im_faults : Sud_obs.Metrics.counter;
  im_ir_writes : Sud_obs.Metrics.counter;
}

val metrics : t -> metrics

type iotlb_stats = { hits : int; misses : int; evictions : int }

val iotlb_stats : t -> iotlb_stats
  [@@deprecated "read the Sud_obs registry handles via Iommu.metrics instead"]
(** Cumulative hit/miss/conflict-eviction counters since creation. *)

val mappings : domain -> (int * int * int * bool) list
(** [(iova, phys, len, writable)] runs, contiguous entries merged, sorted
    by iova — the paper's Figure 9 listing.  The Intel implicit MSI mapping
    is {e not} included (it lives outside the page table); callers that
    want Figure 9's last row add it according to {!mode}. *)

val iotlb_flush : t -> domain -> unit

val iotlb_flushes : t -> int
  [@@deprecated "read Metrics.get (Iommu.metrics t).im_flushes instead"]

val faults : t -> Bus.fault list
(** Accumulated translation faults, oldest first. *)

val clear_faults : t -> unit

(** {1 Interrupt remapping (VT-d with [interrupt_remapping = true])} *)

val ir_available : t -> bool

val ir_allow : t -> source:Bus.bdf -> vector:int -> unit
(** Install a remap-table entry letting [source] raise [vector]. *)

val ir_block_source : t -> source:Bus.bdf -> unit
(** Drop every entry for [source] — "disable MSI interrupts from that
    device altogether" (paper §3.2.2). *)

val ir_check : t -> source:Bus.bdf -> vector:int -> bool
(** Whether the remap table passes this message.  Always true when
    interrupt remapping is unavailable (the testbed's weakness). *)

val ir_updates : t -> int
  [@@deprecated "read Metrics.get (Iommu.metrics t).im_ir_writes instead"]
(** Number of remap-table writes, for the ablation bench. *)
