(* A simulated NVMe-style block controller: paired submission/completion
   queues in host memory, per-queue doorbells, DMA for both the queue
   entries and the data, one MSI-X vector per queue pair.

   The durability model is the part the sud-blk recovery machinery is
   built against: writes land in a {e volatile} write cache that only a
   flush (or a FUA write) moves to media, and [reset] — the supervisor's
   FLR stand-in — drops the cache.  A driver death therefore genuinely
   loses unflushed data at the device, exactly the window crash-consistent
   replay has to cover. *)

module Regs = struct
  let cap_mqes = 0x00            (* max queue entries (RO) *)
  let cap_nqs = 0x04             (* queue pairs implemented (RO) *)
  let vs = 0x08                  (* version (RO) *)
  let cc = 0x14                  (* controller config: bit0 EN *)
  let csts = 0x1C                (* controller status: bit0 RDY *)
  let cap_lo = 0x28              (* capacity in sectors, low 32 (RO) *)
  let cap_hi = 0x2C

  (* Queue-pair configuration block: queue [q]'s registers start at
     [qcfg_base + q * qcfg_stride]. *)
  let qcfg_base = 0x100
  let qcfg_stride = 0x20
  let sq_base_lo = 0x00
  let sq_base_hi = 0x04
  let sq_size = 0x08             (* entries *)
  let cq_base_lo = 0x0C
  let cq_base_hi = 0x10
  let cq_size = 0x14

  (* Doorbells: SQ tail at [db_base + q*8], CQ head at [+4]. *)
  let db_base = 0x1000

  let cc_en = 1
  let csts_rdy = 1

  let sqe_size = 64
  let cqe_size = 16

  (* NVMe IO command set opcodes. *)
  let op_flush = 0x00
  let op_write = 0x01
  let op_read = 0x02

  let flags_fua = 0x01

  let max_queues = 8
  let mqes = 256
end

open Regs

let sector_size = 512

type qp = {
  mutable sqb : int;             (* SQ base bus address *)
  mutable sqn : int;             (* SQ entries *)
  mutable cqb : int;
  mutable cqn : int;
  mutable sq_head : int;         (* device consumer index *)
  mutable sq_tail : int;         (* driver producer index (doorbell) *)
  mutable cq_tail : int;         (* device producer index *)
  mutable cq_head : int;         (* driver consumer index (doorbell) *)
  mutable cq_phase : int;        (* phase the device writes this wrap *)
  mutable busy : bool;           (* a processing pass is scheduled *)
}

let fresh_qp () =
  { sqb = 0; sqn = 0; cqb = 0; cqn = 0; sq_head = 0; sq_tail = 0;
    cq_tail = 0; cq_head = 0; cq_phase = 1; busy = false }

let qp_reset q =
  q.sqb <- 0; q.sqn <- 0; q.cqb <- 0; q.cqn <- 0;
  q.sq_head <- 0; q.sq_tail <- 0; q.cq_tail <- 0; q.cq_head <- 0;
  q.cq_phase <- 1; q.busy <- false

type t = {
  eng : Engine.t;
  dev : Device.t;
  queues : int;
  capacity : int;                            (* sectors *)
  mutable regs_cc : int;
  mutable regs_csts : int;
  qps : qp array;
  (* Durable media vs volatile write cache, both lba -> 512B sector.
     [reset] clears the cache and leaves media — the crash window. *)
  media : (int, bytes) Hashtbl.t;
  wcache : (int, bytes) Hashtbl.t;
  mutable epoch : int;                       (* invalidates scheduled work across reset *)
  (* Storage fault hooks (armed by the soak harness, one-shot). *)
  mutable corrupt_next_completion : int option;  (* xor mask over the cid *)
  mutable drop_next_completion : bool;
  mutable drop_next_flush : bool;
  mutable n_read : int;
  mutable n_write : int;
  mutable n_flush : int;
  mutable n_fua : int;
  mutable n_dma_fault : int;
  mutable n_irq : int;
  mutable n_dropped_completions : int;
  mutable n_corrupted_completions : int;
  mutable n_dropped_flushes : int;
}

let per_cmd_delay = 400 (* ns of device-side processing per command *)

let enabled t = t.regs_cc land cc_en <> 0

let dma_read t ~addr ~len =
  match Device.dma_read t.dev ~addr ~len with
  | Ok b -> Some b
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    None

let dma_write t ~addr ~data =
  match Device.dma_write t.dev ~addr ~data with
  | Ok () -> true
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    false

let sector_of tbl lba =
  match Hashtbl.find_opt tbl lba with Some b -> b | None -> Bytes.make sector_size '\000'

let persist_sector t lba data =
  Hashtbl.replace t.media lba data;
  Hashtbl.remove t.wcache lba

let do_flush t =
  Hashtbl.iter (fun lba data -> Hashtbl.replace t.media lba data) t.wcache;
  Hashtbl.reset t.wcache

(* Post one CQE and signal the queue's vector.  This is where the
   one-shot completion faults bite: a dropped completion vanishes (the
   request stays outstanding forever from the host's point of view), a
   corrupted one carries a garbled cid. *)
let post_cqe t qi cid status =
  let q = t.qps.(qi) in
  if q.cqn > 0 then begin
    if t.drop_next_completion then begin
      t.drop_next_completion <- false;
      t.n_dropped_completions <- t.n_dropped_completions + 1
    end
    else begin
      let cid =
        match t.corrupt_next_completion with
        | Some mask ->
          t.corrupt_next_completion <- None;
          t.n_corrupted_completions <- t.n_corrupted_completions + 1;
          (cid lxor mask) land 0xFFFF
        | None -> cid
      in
      let cqe = Bytes.make cqe_size '\000' in
      Bytes.set_uint16_le cqe 8 (q.sq_head land 0xFFFF);
      Bytes.set_uint16_le cqe 12 (cid land 0xFFFF);
      Bytes.set_uint16_le cqe 14 ((status lsl 1) lor q.cq_phase);
      let addr = q.cqb + (q.cq_tail * cqe_size) in
      if dma_write t ~addr ~data:cqe then begin
        q.cq_tail <- q.cq_tail + 1;
        if q.cq_tail >= q.cqn then begin
          q.cq_tail <- 0;
          q.cq_phase <- 1 - q.cq_phase
        end;
        t.n_irq <- t.n_irq + 1;
        if Pci_cfg.msix_enabled (Device.cfg t.dev) then
          ignore (Device.raise_msix t.dev ~vector:qi : (unit, Bus.fault) result)
        else ignore (Device.raise_msi t.dev : (unit, Bus.fault) result)
      end
    end
  end

let cq_full q = q.cqn > 0 && (q.cq_tail + 1) mod q.cqn = q.cq_head

(* Execute one submission entry.  Data moves by DMA against the PRP the
   entry names, so a driver pointing it at unmapped IOVA space faults in
   the IOMMU like any other rogue DMA. *)
let execute t qi sqe =
  let op = Char.code (Bytes.get sqe 0) in
  let flags = Char.code (Bytes.get sqe 1) in
  let cid = Bytes.get_uint16_le sqe 2 in
  let prp = Int64.to_int (Bytes.get_int64_le sqe 8) in
  let slba = Int64.to_int (Bytes.get_int64_le sqe 16) in
  let count = Int32.to_int (Bytes.get_int32_le sqe 24) land 0xFFFFFFFF in
  if op = op_flush then begin
    if t.drop_next_flush then begin
      (* The lying-firmware fault: the flush disappears — nothing is
         persisted and, crucially, nothing is acknowledged, so the host
         escalates by timeout instead of trusting a false durability
         claim. *)
      t.drop_next_flush <- false;
      t.n_dropped_flushes <- t.n_dropped_flushes + 1
    end
    else begin
      t.n_flush <- t.n_flush + 1;
      do_flush t;
      post_cqe t qi cid 0
    end
  end
  else if op = op_write then begin
    if count = 0 || slba < 0 || slba + count > t.capacity then post_cqe t qi cid 2
    else
      match dma_read t ~addr:prp ~len:(count * sector_size) with
      | None -> post_cqe t qi cid 1
      | Some data ->
        t.n_write <- t.n_write + 1;
        let fua = flags land flags_fua <> 0 in
        if fua then t.n_fua <- t.n_fua + 1;
        for i = 0 to count - 1 do
          let s = Bytes.sub data (i * sector_size) sector_size in
          if fua then persist_sector t (slba + i) s
          else Hashtbl.replace t.wcache (slba + i) s
        done;
        post_cqe t qi cid 0
  end
  else if op = op_read then begin
    if count = 0 || slba < 0 || slba + count > t.capacity then post_cqe t qi cid 2
    else begin
      let data = Bytes.create (count * sector_size) in
      for i = 0 to count - 1 do
        let s =
          match Hashtbl.find_opt t.wcache (slba + i) with
          | Some b -> b
          | None -> sector_of t.media (slba + i)
        in
        Bytes.blit s 0 data (i * sector_size) sector_size
      done;
      t.n_read <- t.n_read + 1;
      if dma_write t ~addr:prp ~data then post_cqe t qi cid 0
      else post_cqe t qi cid 1
    end
  end
  else post_cqe t qi cid 3                   (* unknown opcode *)

(* Pull commands off queue [qi] one per [per_cmd_delay], like the e1000's
   per-descriptor pacing.  Stalls when the CQ is full; the CQ head
   doorbell kicks it again. *)
let rec kick t qi =
  let q = t.qps.(qi) in
  if enabled t && (not q.busy) && q.sqn > 0 && q.sq_head <> q.sq_tail
     && not (cq_full q)
  then begin
    q.busy <- true;
    let epoch = t.epoch in
    ignore
      (Engine.schedule_after t.eng per_cmd_delay (fun () ->
           if t.epoch = epoch then begin
             q.busy <- false;
             if enabled t && q.sqn > 0 && q.sq_head <> q.sq_tail && not (cq_full q)
             then begin
               let idx = q.sq_head in
               q.sq_head <- (q.sq_head + 1) mod q.sqn;
               (match dma_read t ~addr:(q.sqb + (idx * sqe_size)) ~len:sqe_size with
                | Some sqe -> execute t qi sqe
                | None -> ());
               kick t qi
             end
           end)
       : Engine.handle)
  end

let reset t =
  t.epoch <- t.epoch + 1;
  t.regs_cc <- 0;
  t.regs_csts <- 0;
  Array.iter qp_reset t.qps;
  (* Volatile cache contents die with the controller. *)
  Hashtbl.reset t.wcache;
  t.corrupt_next_completion <- None;
  t.drop_next_completion <- false;
  t.drop_next_flush <- false

let qcfg_reg off =
  if off < qcfg_base then None
  else
    let rel = off - qcfg_base in
    let q = rel / qcfg_stride and reg = rel mod qcfg_stride in
    if q < max_queues then Some (q, reg) else None

let db_reg off =
  if off < db_base then None
  else
    let rel = off - db_base in
    let q = rel / 8 and reg = rel mod 8 in
    if q < max_queues && (reg = 0 || reg = 4) then Some (q, reg) else None

let peek t off =
  if off = cap_mqes then mqes
  else if off = cap_nqs then t.queues
  else if off = vs then 0x00010400
  else if off = cc then t.regs_cc
  else if off = csts then t.regs_csts
  else if off = cap_lo then t.capacity land 0xFFFFFFFF
  else if off = cap_hi then t.capacity lsr 32
  else
    match qcfg_reg off with
    | Some (qi, reg) when qi < t.queues ->
      let q = t.qps.(qi) in
      if reg = sq_base_lo then q.sqb land 0xFFFFFFFF
      else if reg = sq_base_hi then q.sqb lsr 32
      else if reg = sq_size then q.sqn
      else if reg = cq_base_lo then q.cqb land 0xFFFFFFFF
      else if reg = cq_base_hi then q.cqb lsr 32
      else if reg = cq_size then q.cqn
      else 0
    | _ -> 0

let write32 t off v =
  let v = v land 0xFFFFFFFF in
  if off = cc then begin
    let was = enabled t in
    t.regs_cc <- v;
    if v land cc_en <> 0 then begin
      t.regs_csts <- csts_rdy;
      if not was then for qi = 0 to t.queues - 1 do kick t qi done
    end
    else t.regs_csts <- 0
  end
  else
    match qcfg_reg off with
    | Some (qi, reg) when qi < t.queues ->
      let q = t.qps.(qi) in
      if reg = sq_base_lo then q.sqb <- q.sqb land lnot 0xFFFFFFFF lor v
      else if reg = sq_base_hi then q.sqb <- q.sqb land 0xFFFFFFFF lor (v lsl 32)
      else if reg = sq_size then q.sqn <- min v mqes
      else if reg = cq_base_lo then q.cqb <- q.cqb land lnot 0xFFFFFFFF lor v
      else if reg = cq_base_hi then q.cqb <- q.cqb land 0xFFFFFFFF lor (v lsl 32)
      else if reg = cq_size then q.cqn <- min v mqes
    | _ ->
      (match db_reg off with
       | Some (qi, reg) when qi < t.queues ->
         let q = t.qps.(qi) in
         if reg = 0 then begin
           if q.sqn > 0 then begin
             q.sq_tail <- v mod q.sqn;
             kick t qi
           end
         end
         else if q.cqn > 0 then begin
           q.cq_head <- v mod q.cqn;
           kick t qi                       (* CQ space may unstall the SQ *)
         end
       | _ -> ())

let sub_access off size =
  let word = off land lnot 3 and shift = (off land 3) * 8 in
  let mask = ((1 lsl (size * 8)) - 1) lsl shift in
  (word, shift, mask)

let mmio_read t ~bar ~off ~size =
  if bar <> 0 then 0
  else if size = 4 && off land 3 = 0 then peek t off
  else begin
    let word, shift, mask = sub_access off size in
    (peek t word land mask) lsr shift
  end

let mmio_write t ~bar ~off ~size v =
  if bar = 0 then begin
    if size = 4 && off land 3 = 0 then write32 t off v
    else begin
      let word, shift, mask = sub_access off size in
      let merged = peek t word land lnot mask lor ((v lsl shift) land mask) in
      write32 t word merged
    end
  end

let create eng ?(queues = 4) ?(capacity = 16384) () =
  if queues < 1 || queues > max_queues then
    invalid_arg "Nvme_dev.create: queues must be 1..8";
  let cfg =
    Pci_cfg.create ~vendor:0x8086 ~device:0x0953 ~class_code:0x010802
      ~bars:[| Some (Pci_cfg.Mem { size = 0x4000 }) |]
      ()
  in
  Pci_cfg.add_msi_capability cfg;
  Pci_cfg.add_msix_capability cfg ~vectors:queues;
  let dev = Device.create ~name:"nvme" ~cfg ~ops:Device.no_io in
  let t =
    { eng;
      dev;
      queues;
      capacity;
      regs_cc = 0;
      regs_csts = 0;
      qps = Array.init max_queues (fun _ -> fresh_qp ());
      media = Hashtbl.create 1024;
      wcache = Hashtbl.create 256;
      epoch = 0;
      corrupt_next_completion = None;
      drop_next_completion = false;
      drop_next_flush = false;
      n_read = 0;
      n_write = 0;
      n_flush = 0;
      n_fua = 0;
      n_dma_fault = 0;
      n_irq = 0;
      n_dropped_completions = 0;
      n_corrupted_completions = 0;
      n_dropped_flushes = 0 }
  in
  reset t;
  Device.set_ops t.dev
    { Device.mmio_read = (fun ~bar ~off ~size -> mmio_read t ~bar ~off ~size);
      mmio_write = (fun ~bar ~off ~size v -> mmio_write t ~bar ~off ~size v);
      io_read = (fun ~bar:_ ~off:_ ~size -> (1 lsl (size * 8)) - 1);
      io_write = (fun ~bar:_ ~off:_ ~size:_ _ -> ());
      reset = (fun () -> reset t) };
  t

let device t = t.dev
let queues t = t.queues
let capacity t = t.capacity

(* Oracle-side accessors for the crash-consistency invariant: what is
   durably on media (survives reset) vs parked in the volatile cache. *)
let media_sector t ~lba = Hashtbl.find_opt t.media lba
let cached_sector t ~lba = Hashtbl.find_opt t.wcache lba
let dirty_cache_sectors t = Hashtbl.length t.wcache

let inject_corrupt_completion t ~mask =
  t.corrupt_next_completion <- Some (mask land 0xFFFF)

let inject_drop_completion t = t.drop_next_completion <- true
let inject_drop_flush t = t.drop_next_flush <- true

let debug_qp_summary t =
  String.concat "; "
    (List.init t.queues (fun qi ->
         let q = t.qps.(qi) in
         Printf.sprintf "q%d sqh %d sqt %d cqt %d cqh %d cqn %d busy %b" qi
           q.sq_head q.sq_tail q.cq_tail q.cq_head q.cqn q.busy))

let reads t = t.n_read
let writes t = t.n_write
let flushes t = t.n_flush
let fua_writes t = t.n_fua
let dma_faults t = t.n_dma_fault
let irqs_raised t = t.n_irq
let dropped_completions t = t.n_dropped_completions
let corrupted_completions t = t.n_corrupted_completions
let dropped_flushes t = t.n_dropped_flushes
