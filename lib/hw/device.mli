(** A PCI endpoint device: config space plus register-file behaviour.

    Device models (e1000, HDA, EHCI, ...) construct one of these.  The
    platform ({!Pci_topology}) attaches it, assigns BDF/BAR addresses and
    installs the host interface through which the device issues DMA.  All
    DMA — including raising an MSI, which is just a 4-byte write to the MSI
    window — flows through the topology and the IOMMU, so a device
    programmed maliciously is subject to exactly the checks the paper
    relies on. *)

type ops = {
  mmio_read : bar:int -> off:int -> size:int -> int;
  mmio_write : bar:int -> off:int -> size:int -> int -> unit;
  io_read : bar:int -> off:int -> size:int -> int;
  io_write : bar:int -> off:int -> size:int -> int -> unit;
  reset : unit -> unit;
}

type host_iface = {
  dma_read : source:Bus.bdf -> addr:int -> len:int -> (bytes, Bus.fault) result;
  dma_write : source:Bus.bdf -> addr:int -> data:bytes -> (unit, Bus.fault) result;
}

type t

val create : name:string -> cfg:Pci_cfg.t -> ops:ops -> t

val name : t -> string
val cfg : t -> Pci_cfg.t
val ops : t -> ops
val set_ops : t -> ops -> unit

val bdf : t -> Bus.bdf
(** Raises [Failure] before the device is attached. *)

val is_attached : t -> bool
val attach_to_host : t -> bdf:Bus.bdf -> host_iface -> unit

val set_spoof_source : t -> Bus.bdf option -> unit
(** Make the device lie about its requester ID on subsequent DMA — the
    attack ACS source validation exists to stop. *)

val dma_read : t -> addr:int -> len:int -> (bytes, Bus.fault) result
(** Device-initiated DMA read.  Silently aborts (returns [Bus_abort]) when
    bus mastering is disabled in the command register. *)

val dma_write : t -> addr:int -> data:bytes -> (unit, Bus.fault) result

val raise_msi : t -> (unit, Bus.fault) result
(** Emit the device's configured MSI message: a DMA write of the message
    data to the message address.  Does nothing (returns [Ok ()]) when MSI
    is disabled or masked in the capability — that mask is the kernel's
    cheap storm defence. *)

val raise_msix : t -> vector:int -> (unit, Bus.fault) result
(** Emit one MSI-X table entry's message.  A message suppressed by the
    per-vector mask bit sets that entry's pending bit instead of going
    out on the bus, so masking one storming vector never silences its
    siblings. *)

val no_io : ops
(** Placeholder ops for devices built in two steps (state first, ops
    after); every operation raises [Failure]. *)
