type mode =
  | Intel_vtd of { interrupt_remapping : bool }
  | Amd_vi

type pte = { phys : int; writable : bool }

type domain = {
  (* Two-level table over a 4 GiB IO virtual space: directory index = bits
     31..22, table index = bits 21..12. *)
  dir : pte option array option array;
  mutable entries : int;
  dom_source : Bus.bdf;             (* requester this domain translates for *)
}

(* One cached translation: the IOTLB caches the pte {e with} its permission
   bits, so a write to a read-only page faults without a walk — and so a
   stale entry surviving an unmap would be a genuine containment hole, which
   is why every unmap/detach/flush scrubs the cache below. *)
type iotlb_entry = {
  e_source : Bus.bdf;
  e_vpage : int;                    (* iova lsr 12 *)
  e_ppage : int;                    (* page-aligned physical base *)
  e_writable : bool;
}

type iotlb_stats = { hits : int; misses : int; evictions : int }

type metrics = {
  (* Translate sits on the DMA fast path (~9 ns/hit): the hit/miss tallies
     stay plain mutable words on [t] and the registry reads them through
     gauge callbacks, so instrumenting them costs the hot path nothing. *)
  im_hits : Sud_obs.Metrics.gauge;
  im_misses : Sud_obs.Metrics.gauge;
  im_evictions : Sud_obs.Metrics.counter;
  im_flushes : Sud_obs.Metrics.counter;
  im_faults : Sud_obs.Metrics.counter;
  im_ir_writes : Sud_obs.Metrics.counter;
}

type t = {
  mode : mode;
  domains : (Bus.bdf, domain) Hashtbl.t;
  iotlb : iotlb_entry option array; (* direct-mapped on (source, vpage) *)
  mutable tlb_hits : int;           (* hot words, exported as gauges *)
  mutable tlb_misses : int;
  mutable m : metrics option;       (* set once in [create] *)
  mutable flt : Bus.fault list;     (* newest first *)
  ir_table : (Bus.bdf * int, unit) Hashtbl.t;
}

let dir_slots = 1024
let tbl_slots = 1024
let iotlb_slots = 64

let create ~mode () =
  let c name = Sud_obs.Metrics.counter ~subsystem:"iommu" ~name () in
  let g name f = Sud_obs.Metrics.gauge ~subsystem:"iommu" ~name f in
  let t =
    { mode;
      domains = Hashtbl.create 8;
      iotlb = Array.make iotlb_slots None;
      tlb_hits = 0;
      tlb_misses = 0;
      m = None;
      flt = [];
      ir_table = Hashtbl.create 8 }
  in
  (* The gauges close over [t], so the record is knotted after the fact. *)
  t.m <-
    Some
      { im_hits = g "iotlb_hits" (fun () -> t.tlb_hits);
        im_misses = g "iotlb_misses" (fun () -> t.tlb_misses);
        im_evictions = c "iotlb_evictions";
        im_flushes = c "iotlb_flushes";
        im_faults = c "faults";
        im_ir_writes = c "ir_updates" };
  t

let mode t = t.mode
let metrics t = match t.m with Some m -> m | None -> assert false

let iotlb_stats t =
  { hits = t.tlb_hits; misses = t.tlb_misses;
    evictions = Sud_obs.Metrics.get (metrics t).im_evictions }

let iotlb_slot source vpage = (vpage lxor (source * 7919)) land (iotlb_slots - 1)

let iotlb_drop_page t ~source ~vpage =
  let i = iotlb_slot source vpage in
  match t.iotlb.(i) with
  | Some e when e.e_source = source && e.e_vpage = vpage -> t.iotlb.(i) <- None
  | Some _ | None -> ()

let iotlb_drop_source t ~source =
  for i = 0 to iotlb_slots - 1 do
    match t.iotlb.(i) with
    | Some e when e.e_source = source -> t.iotlb.(i) <- None
    | Some _ | None -> ()
  done

let fresh_domain ~source = { dir = Array.make dir_slots None; entries = 0; dom_source = source }

let attach t ~source =
  match Hashtbl.find_opt t.domains source with
  | Some d -> d
  | None ->
    let d = fresh_domain ~source in
    Hashtbl.add t.domains source d;
    (* Defensive: a translation cached while the device ran in passthrough
       must not outlive the confinement decision (we never cache the
       passthrough path, but scrubbing here keeps the invariant local). *)
    iotlb_drop_source t ~source;
    d

let detach t ~source =
  Hashtbl.remove t.domains source;
  iotlb_drop_source t ~source

let domain_of t ~source = Hashtbl.find_opt t.domains source

let indices iova = (iova lsr 22) land (dir_slots - 1), (iova lsr 12) land (tbl_slots - 1)

let lookup d iova =
  let di, ti = indices iova in
  match d.dir.(di) with None -> None | Some tbl -> tbl.(ti)

let check_range name iova len =
  if not (Bus.is_page_aligned iova) then invalid_arg (name ^ ": iova not page-aligned");
  if len <= 0 || not (Bus.is_page_aligned len) then
    invalid_arg (name ^ ": length must be a positive page multiple");
  if iova + len > 0x1_0000_0000 then invalid_arg (name ^ ": beyond 4GiB IO space")

let map _t d ~iova ~phys ~len ~writable =
  check_range "Iommu.map" iova len;
  if Sud_obs.Trace.on () then
    ignore
      (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"iommu" ~name:"map"
         ~attrs:
           [ "bdf", Bus.string_of_bdf d.dom_source; "iova", Printf.sprintf "0x%x" iova;
             "len", string_of_int len; "writable", string_of_bool writable ]
         ());
  if not (Bus.is_page_aligned phys) then invalid_arg "Iommu.map: phys not page-aligned";
  let pages = len / Bus.page_size in
  for i = 0 to pages - 1 do
    let va = iova + (i * Bus.page_size) and pa = phys + (i * Bus.page_size) in
    let di, ti = indices va in
    let tbl =
      match d.dir.(di) with
      | Some tbl -> tbl
      | None ->
        let tbl = Array.make tbl_slots None in
        d.dir.(di) <- Some tbl;
        tbl
    in
    (match tbl.(ti) with
     | Some existing when existing.phys <> pa || existing.writable <> writable ->
       invalid_arg "Iommu.map: conflicting existing mapping"
     | Some _ -> ()
     | None ->
       tbl.(ti) <- Some { phys = pa; writable };
       d.entries <- d.entries + 1)
  done

let unmap t d ~iova ~len =
  check_range "Iommu.unmap" iova len;
  if Sud_obs.Trace.on () then
    ignore
      (Sud_obs.Trace.emit ~parent:(Sud_obs.Trace.current ()) ~cat:"iommu" ~name:"unmap"
         ~attrs:
           [ "bdf", Bus.string_of_bdf d.dom_source; "iova", Printf.sprintf "0x%x" iova;
             "len", string_of_int len ]
         ());
  let pages = len / Bus.page_size in
  for i = 0 to pages - 1 do
    let va = iova + (i * Bus.page_size) in
    iotlb_drop_page t ~source:d.dom_source ~vpage:(va lsr 12);
    let di, ti = indices va in
    match d.dir.(di) with
    | None -> ()
    | Some tbl ->
      if tbl.(ti) <> None then begin
        tbl.(ti) <- None;
        d.entries <- d.entries - 1
      end
  done;
  Sud_obs.Metrics.incr (metrics t).im_flushes

(* The fault span is the causal pivot of the whole observability layer:
   it parents to the ambient span (a handler running inside a uchan RPC)
   or, for device DMA fired from engine callbacks, to the most recent
   RPC issued on any channel — and it is remembered per-BDF so the
   supervisor can parent its detect span to it. *)
let record_fault t f =
  t.flt <- f :: t.flt;
  Sud_obs.Metrics.incr (metrics t).im_faults;
  if Sud_obs.Trace.on () then begin
    match f with
    | Bus.Iommu_fault { source; addr; dir } ->
      let parent =
        let c = Sud_obs.Trace.current () in
        if c <> 0 then c else Sud_obs.Trace.recall "uchan.rpc.last"
      in
      let id =
        Sud_obs.Trace.emit ~parent ~cat:"iommu" ~name:"fault"
          ~attrs:
            [ "bdf", Bus.string_of_bdf source; "addr", Printf.sprintf "0x%x" addr;
              "dir", (match dir with Bus.Dma_read -> "read" | Bus.Dma_write -> "write") ]
          ()
      in
      Sud_obs.Trace.remember (Printf.sprintf "iommu.fault.last:%d" source) id;
      Sud_obs.Trace.remember "iommu.fault.last" id
    | _ -> ()
  end;
  `Fault f

(* The two-level walk plus IOTLB fill, on a cache miss. *)
let walk_and_fill t d ~source ~addr ~dir =
  match lookup d addr with
  | Some pte ->
    let vpage = addr lsr 12 in
    let i = iotlb_slot source vpage in
    (match t.iotlb.(i) with
     | Some e when not (e.e_source = source && e.e_vpage = vpage) ->
       Sud_obs.Metrics.incr (metrics t).im_evictions
     | Some _ | None -> ());
    t.iotlb.(i) <- Some { e_source = source; e_vpage = vpage; e_ppage = pte.phys;
                          e_writable = pte.writable };
    if dir = Bus.Dma_read || pte.writable then `Phys (pte.phys lor (addr land Bus.page_mask))
    else record_fault t (Bus.Iommu_fault { source; addr; dir })
  | None -> record_fault t (Bus.Iommu_fault { source; addr; dir })

(* Everything off the IOTLB fast path: MSI-window writes, passthrough,
   and cache misses. *)
let translate_slow t ~source ~addr ~dir =
  let in_msi = Bus.in_msi_window addr in
  let dom = Hashtbl.find_opt t.domains source in
  match t.mode, dom with
  | Intel_vtd _, _ when in_msi && dir = Bus.Dma_write ->
    (* The implicit identity mapping: present in every VT-d page table,
       whether or not a domain exists. *)
    (`Msi, `Bypass)
  | _, None ->
    (* No domain attached: passthrough, as for trusted in-kernel drivers
       (Linux iommu=pt).  SUD attaches an (initially empty) domain the
       moment an untrusted driver opens the device.  Never cached: the
       moment a domain appears, these identity translations must die. *)
    ((if in_msi && dir = Bus.Dma_write then `Msi else `Phys addr), `Bypass)
  | Amd_vi, Some d when in_msi && dir = Bus.Dma_write ->
    (match lookup d addr with
     | Some _ -> (`Msi, `Walk)
     | None -> (record_fault t (Bus.Iommu_fault { source; addr; dir }), `Walk))
  | (Intel_vtd _ | Amd_vi), Some d ->
    t.tlb_misses <- t.tlb_misses + 1;
    (walk_and_fill t d ~source ~addr ~dir, `Walk)

let translate_info t ~source ~addr ~dir =
  (* IOTLB first, before the domain hashtable is even touched.  Sound
     because only successful walks of an attached domain are ever inserted,
     MSI-window writes are diverted before the cache can answer (an AMD
     domain may legitimately map the window as [`Phys] for reads), and
     unmap/detach/flush scrub their entries. *)
  if Bus.in_msi_window addr && dir = Bus.Dma_write then translate_slow t ~source ~addr ~dir
  else begin
    let vpage = addr lsr 12 in
    match t.iotlb.(iotlb_slot source vpage) with
    | Some e when e.e_source = source && e.e_vpage = vpage ->
      t.tlb_hits <- t.tlb_hits + 1;
      if dir = Bus.Dma_read || e.e_writable then
        (`Phys (e.e_ppage lor (addr land Bus.page_mask)), `Hit)
      else (record_fault t (Bus.Iommu_fault { source; addr; dir }), `Hit)
    | Some _ | None -> translate_slow t ~source ~addr ~dir
  end

let translate t ~source ~addr ~dir = fst (translate_info t ~source ~addr ~dir)

let mappings d =
  let runs = ref [] in
  let cur = ref None in
  let flush_run () =
    match !cur with
    | Some (iova, phys, len, w) ->
      runs := (iova, phys, len, w) :: !runs;
      cur := None
    | None -> ()
  in
  for di = 0 to dir_slots - 1 do
    match d.dir.(di) with
    | None -> flush_run ()
    | Some tbl ->
      for ti = 0 to tbl_slots - 1 do
        let va = (di lsl 22) lor (ti lsl 12) in
        match tbl.(ti) with
        | None -> flush_run ()
        | Some pte ->
          (match !cur with
           | Some (iova, phys, len, w)
             when iova + len = va && phys + len = pte.phys && w = pte.writable ->
             cur := Some (iova, phys, len + Bus.page_size, w)
           | Some _ | None ->
             flush_run ();
             cur := Some (va, pte.phys, Bus.page_size, pte.writable))
      done
  done;
  flush_run ();
  List.rev !runs

let iotlb_flush t d =
  iotlb_drop_source t ~source:d.dom_source;
  Sud_obs.Metrics.incr (metrics t).im_flushes

let iotlb_flushes t = Sud_obs.Metrics.get (metrics t).im_flushes

let faults t = List.rev t.flt
let clear_faults t = t.flt <- []

let ir_available t =
  match t.mode with
  | Intel_vtd { interrupt_remapping } -> interrupt_remapping
  | Amd_vi -> false

let ir_allow t ~source ~vector =
  Sud_obs.Metrics.incr (metrics t).im_ir_writes;
  Hashtbl.replace t.ir_table (source, vector) ()

let ir_block_source t ~source =
  Sud_obs.Metrics.incr (metrics t).im_ir_writes;
  let doomed =
    Hashtbl.fold (fun (s, v) () acc -> if s = source then (s, v) :: acc else acc) t.ir_table []
  in
  List.iter (fun key -> Hashtbl.remove t.ir_table key) doomed

let ir_check t ~source ~vector =
  if not (ir_available t) then true
  else Hashtbl.mem t.ir_table (source, vector)

let ir_updates t = Sud_obs.Metrics.get (metrics t).im_ir_writes
