type bar_kind = Mem of { size : int } | Io of { size : int }

(* One MSI-X table entry: message address/data plus the per-vector mask
   and pending bits.  The table lives beside the register file rather
   than inside a BAR — the layout (16 bytes per entry) is modeled, the
   backing store is not. *)
type msix_entry = {
  mutable mx_addr : int;
  mutable mx_data : int;
  mutable mx_masked : bool;
  mutable mx_pending : bool;
}

type t = {
  space : bytes;                 (* 256-byte register file *)
  bars : bar_kind option array;
  sizing : bool array;           (* BAR is in sizing mode (all-1s written) *)
  mutable msi_off : int;         (* 0 = no MSI capability *)
  mutable msix_off : int;        (* 0 = no MSI-X capability *)
  mutable msix_table : msix_entry array;
}

let vendor_id = 0x00
let device_id = 0x02
let command = 0x04
let status = 0x06
let revision = 0x08
let class_code = 0x09
let cache_line = 0x0C
let latency_timer = 0x0D
let header_type = 0x0E
let bar0 = 0x10
let cap_ptr = 0x34
let interrupt_line = 0x3C
let interrupt_pin = 0x3D

let cmd_io_enable = 0x0001
let cmd_mem_enable = 0x0002
let cmd_bus_master = 0x0004
let cmd_intx_disable = 0x0400

let msi_cap_id = 0x05
let msix_cap_id = 0x11
let status_cap_list = 0x10

(* MSI-X message control (cap +2): bits 0-10 = table size - 1,
   bit 14 = function mask, bit 15 = MSI-X enable. *)
let msix_ctrl = 2
let msix_ctrl_enable = 0x8000
let msix_ctrl_func_mask = 0x4000
let msix_max_vectors = 32

(* MSI capability layout (32-bit with per-vector masking):
   +0 cap id, +1 next ptr, +2 message control, +4 address, +8 data,
   +12 mask bits.  Control bit 0 = enable; mask register bit 0 masks the
   single vector. *)
let msi_ctrl = 2
let msi_addr = 4
let msi_data_off = 8
let msi_mask_off = 12

let raw_read8 t off = Char.code (Bytes.get t.space off)
let raw_write8 t off v = Bytes.set t.space off (Char.chr (v land 0xff))

let raw_read t off size =
  match size with
  | 1 -> raw_read8 t off
  | 2 -> raw_read8 t off lor (raw_read8 t (off + 1) lsl 8)
  | 4 ->
    raw_read8 t off
    lor (raw_read8 t (off + 1) lsl 8)
    lor (raw_read8 t (off + 2) lsl 16)
    lor (raw_read8 t (off + 3) lsl 24)
  | _ -> invalid_arg "Pci_cfg: access size must be 1, 2 or 4"

let raw_write t off size v =
  match size with
  | 1 -> raw_write8 t off v
  | 2 ->
    raw_write8 t off v;
    raw_write8 t (off + 1) (v lsr 8)
  | 4 ->
    raw_write8 t off v;
    raw_write8 t (off + 1) (v lsr 8);
    raw_write8 t (off + 2) (v lsr 16);
    raw_write8 t (off + 3) (v lsr 24)
  | _ -> invalid_arg "Pci_cfg: access size must be 1, 2 or 4"

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~vendor ~device ?(class_code = 0x020000) ?(revision = 1) ~bars () =
  if Array.length bars > 6 then invalid_arg "Pci_cfg.create: at most 6 BARs";
  Array.iter
    (function
      | Some (Mem { size }) when not (is_pow2 size && size >= Bus.page_size) ->
        invalid_arg "Pci_cfg.create: memory BAR size must be a power of two >= one page"
      | Some (Io { size }) when not (is_pow2 size && size >= 4) ->
        invalid_arg "Pci_cfg.create: IO BAR size must be a power of two >= 4"
      | Some (Mem _) | Some (Io _) | None -> ())
    bars;
  let full = Array.make 6 None in
  Array.blit bars 0 full 0 (Array.length bars);
  let t =
    { space = Bytes.make 256 '\000';
      bars = full;
      sizing = Array.make 6 false;
      msi_off = 0;
      msix_off = 0;
      msix_table = [||] }
  in
  raw_write t vendor_id 2 vendor;
  raw_write t device_id 2 device;
  raw_write8 t 0x08 revision;
  raw_write8 t 0x09 (class_code land 0xff);
  raw_write t 0x0A 2 (class_code lsr 8);
  t

let bar_off n = bar0 + (4 * n)

let bar_flags = function
  | Mem _ -> 0x0           (* 32-bit non-prefetchable memory *)
  | Io _ -> 0x1

let bar_size = function Mem { size } -> size | Io { size } -> size

let bar_kind t n = if n < 0 || n > 5 then None else t.bars.(n)

let bar_base t n =
  match t.bars.(n) with
  | None -> 0
  | Some kind -> raw_read t (bar_off n) 4 land lnot (bar_size kind - 1)

let set_bar_base t n base =
  match t.bars.(n) with
  | None -> invalid_arg "Pci_cfg.set_bar_base: no such BAR"
  | Some kind ->
    if base land (bar_size kind - 1) <> 0 then
      invalid_arg "Pci_cfg.set_bar_base: base not size-aligned";
    t.sizing.(n) <- false;
    raw_write t (bar_off n) 4 (base lor bar_flags kind)

let command_has t bit = raw_read t command 2 land bit <> 0

let read t ~off ~size =
  (* BAR sizing protocol: after all-1s is written, a read returns the size
     mask with the flag bits. *)
  let in_bar n = off = bar_off n && size = 4 in
  let rec check n =
    if n > 5 then raw_read t off size
    else
      match t.bars.(n) with
      | Some kind when in_bar n && t.sizing.(n) ->
        lnot (bar_size kind - 1) land 0xFFFFFFFF lor bar_flags kind
      | Some _ | None -> check (n + 1)
  in
  check 0

let write t ~off ~size v =
  let rec bar_hit n =
    if n > 5 then None
    else
      match t.bars.(n) with
      | Some kind when off = bar_off n && size = 4 -> Some (n, kind)
      | Some _ | None -> bar_hit (n + 1)
  in
  match bar_hit 0 with
  | Some (n, kind) ->
    if v land 0xFFFFFFFF = 0xFFFFFFFF then t.sizing.(n) <- true
    else begin
      t.sizing.(n) <- false;
      raw_write t off size (v land lnot (bar_size kind - 1) lor bar_flags kind)
    end
  | None -> raw_write t off size v

(* Prepend a capability header at [off], linking to the current list head,
   and make it the new head. *)
let link_capability t ~off ~id =
  let head = if raw_read t status 2 land status_cap_list <> 0 then raw_read8 t cap_ptr else 0 in
  raw_write8 t cap_ptr off;
  raw_write t status 2 (raw_read t status 2 lor status_cap_list);
  raw_write8 t off id;
  raw_write8 t (off + 1) head

let add_msi_capability t =
  if t.msi_off <> 0 then invalid_arg "Pci_cfg.add_msi_capability: already present";
  (* Place the capability at 0x50, a conventional spot. *)
  let off = 0x50 in
  link_capability t ~off ~id:msi_cap_id;
  raw_write t (off + msi_ctrl) 2 0x0100;  (* per-vector masking capable *)
  t.msi_off <- off

let add_msix_capability t ~vectors =
  if t.msix_off <> 0 then invalid_arg "Pci_cfg.add_msix_capability: already present";
  if vectors <= 0 || vectors > msix_max_vectors then
    invalid_arg "Pci_cfg.add_msix_capability: vector count out of range";
  let off = 0x60 in
  link_capability t ~off ~id:msix_cap_id;
  raw_write t (off + msix_ctrl) 2 (vectors - 1);   (* table size, enable clear *)
  (* Per spec, every vector comes up masked; the kernel unmasks as it
     programs each entry. *)
  t.msix_table <-
    Array.init vectors (fun _ ->
        { mx_addr = 0; mx_data = 0; mx_masked = true; mx_pending = false });
  t.msix_off <- off

let find_capability t id =
  if raw_read t status 2 land status_cap_list = 0 then None
  else begin
    let rec walk off seen =
      if off = 0 || seen > 48 then None
      else if raw_read8 t off = id then Some off
      else walk (raw_read8 t (off + 1)) (seen + 1)
    in
    walk (raw_read8 t cap_ptr) 0
  end

let msi_field t f size =
  if t.msi_off = 0 then 0 else raw_read t (t.msi_off + f) size

let msi_enabled t = t.msi_off <> 0 && msi_field t msi_ctrl 2 land 1 <> 0
let msi_masked t = t.msi_off <> 0 && msi_field t msi_mask_off 4 land 1 <> 0
let msi_address t = msi_field t msi_addr 4
let msi_data t = msi_field t msi_data_off 4

let msi_configure t ~address ~data =
  if t.msi_off = 0 then invalid_arg "Pci_cfg.msi_configure: no MSI capability";
  raw_write t (t.msi_off + msi_addr) 4 address;
  raw_write t (t.msi_off + msi_data_off) 4 data;
  raw_write t (t.msi_off + msi_ctrl) 2 (msi_field t msi_ctrl 2 lor 1)

let msi_set_mask t masked =
  if t.msi_off = 0 then invalid_arg "Pci_cfg.msi_set_mask: no MSI capability";
  let cur = msi_field t msi_mask_off 4 in
  raw_write t (t.msi_off + msi_mask_off) 4 (if masked then cur lor 1 else cur land lnot 1)

(* ---- MSI-X ---- *)

let msix_table_size t = Array.length t.msix_table

let msix_entry t ~vector what =
  if vector < 0 || vector >= Array.length t.msix_table then
    invalid_arg (Printf.sprintf "Pci_cfg.%s: no MSI-X vector %d" what vector);
  t.msix_table.(vector)

let msix_enabled t =
  t.msix_off <> 0 && raw_read t (t.msix_off + msix_ctrl) 2 land msix_ctrl_enable <> 0

let msix_set_enabled t on =
  if t.msix_off = 0 then invalid_arg "Pci_cfg.msix_set_enabled: no MSI-X capability";
  let cur = raw_read t (t.msix_off + msix_ctrl) 2 in
  raw_write t (t.msix_off + msix_ctrl) 2
    (if on then cur lor msix_ctrl_enable else cur land lnot msix_ctrl_enable)

let msix_func_masked t =
  t.msix_off <> 0 && raw_read t (t.msix_off + msix_ctrl) 2 land msix_ctrl_func_mask <> 0

let msix_configure t ~vector ~address ~data =
  let e = msix_entry t ~vector "msix_configure" in
  e.mx_addr <- address;
  e.mx_data <- data;
  e.mx_masked <- false

let msix_address t ~vector = (msix_entry t ~vector "msix_address").mx_addr
let msix_data t ~vector = (msix_entry t ~vector "msix_data").mx_data

let msix_set_mask t ~vector masked =
  let e = msix_entry t ~vector "msix_set_mask" in
  e.mx_masked <- masked;
  if not masked then e.mx_pending <- false

let msix_masked t ~vector = (msix_entry t ~vector "msix_masked").mx_masked
let msix_pending t ~vector = (msix_entry t ~vector "msix_pending").mx_pending

let msix_set_pending t ~vector p =
  (msix_entry t ~vector "msix_set_pending").mx_pending <- p

let snapshot t = Bytes.copy t.space
