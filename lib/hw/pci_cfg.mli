(** PCI configuration space: a 256-byte register file with the standard
    type-0 header layout and a capability list.

    Devices own one of these; the platform reads BARs out of it to build
    the address map; SUD's safe-PCI module filters driver writes to it.
    All multi-byte accesses are little-endian. *)

type t

(** {1 Standard register offsets}

    [vendor_id] 0x00 (16 bit), [device_id] 0x02 (16), [command] 0x04 (16),
    [status] 0x06 (16), [revision] 0x08 (8), [class_code] 0x09 (24),
    [cache_line] 0x0C (8), [latency_timer] 0x0D (8), [header_type] 0x0E (8),
    [bar0] 0x10 (BARn is [bar0 + 4*n]), [cap_ptr] 0x34 (8),
    [interrupt_line] 0x3C (8), [interrupt_pin] 0x3D (8). *)

val vendor_id : int
val device_id : int
val command : int
val status : int
val revision : int
val class_code : int
val cache_line : int
val latency_timer : int
val header_type : int
val bar0 : int
val cap_ptr : int
val interrupt_line : int
val interrupt_pin : int

(** Command register bits *)

val cmd_io_enable : int
val cmd_mem_enable : int
val cmd_bus_master : int
val cmd_intx_disable : int

(** {1 Construction} *)

type bar_kind = Mem of { size : int } | Io of { size : int }

val create :
  vendor:int ->
  device:int ->
  ?class_code:int ->
  ?revision:int ->
  bars:bar_kind option array ->
  unit ->
  t
(** A type-0 config space with up to 6 BARs.  BAR sizes must be powers of
    two and at least one page for memory BARs (SUD requires page-aligned
    MMIO ranges). *)

(** {1 Raw access (bus master / root complex view)} *)

val read : t -> off:int -> size:int -> int
(** [size] is 1, 2 or 4.  Reads implement BAR sizing: after writing all-1s
    to a BAR, reading returns the size mask. *)

val write : t -> off:int -> size:int -> int -> unit

val bar_kind : t -> int -> bar_kind option
val bar_base : t -> int -> int
(** Programmed base address of BAR [n] (flags masked off). *)

val set_bar_base : t -> int -> int -> unit
val command_has : t -> int -> bool

(** {1 MSI capability} *)

val add_msi_capability : t -> unit
(** Append a 32-bit MSI capability (with per-vector masking) to the
    capability list. *)

val find_capability : t -> int -> int option
(** Offset of the first capability with the given ID, walking the list like
    [pci_find_capability]. *)

val msi_cap_id : int

val msi_enabled : t -> bool
val msi_masked : t -> bool
val msi_address : t -> int
val msi_data : t -> int

val msi_configure : t -> address:int -> data:int -> unit
(** Program address/data and set the enable bit (kernel-side helper). *)

val msi_set_mask : t -> bool -> unit

(** {1 MSI-X capability}

    A vector table of up to {!msix_max_vectors} entries, each with its
    own message address/data, mask bit and pending bit (16 bytes per
    entry in the modeled layout).  Entries come up masked; the kernel
    unmasks each as it programs it.  The message-control word lives in
    config space (bits 0–10 table size − 1, bit 14 function mask,
    bit 15 enable); the table itself is held beside the register
    file. *)

val msix_cap_id : int
val msix_max_vectors : int

val add_msix_capability : t -> vectors:int -> unit
(** Append an MSI-X capability advertising [vectors] table entries
    (1..{!msix_max_vectors}). *)

val msix_table_size : t -> int
(** Number of table entries; 0 when the capability is absent. *)

val msix_enabled : t -> bool
val msix_set_enabled : t -> bool -> unit
val msix_func_masked : t -> bool

val msix_configure : t -> vector:int -> address:int -> data:int -> unit
(** Program one table entry and clear its mask bit. *)

val msix_address : t -> vector:int -> int
val msix_data : t -> vector:int -> int

val msix_set_mask : t -> vector:int -> bool -> unit
(** Set/clear one entry's mask bit.  Unmasking clears the pending bit
    (the device re-raises if the condition persists). *)

val msix_masked : t -> vector:int -> bool

val msix_pending : t -> vector:int -> bool
(** Whether a message was suppressed by the mask bit since the last
    unmask — the spec's pending-bit array. *)

val msix_set_pending : t -> vector:int -> bool -> unit

(** {1 Snapshots} *)

val snapshot : t -> bytes
(** A copy of all 256 bytes — used by the config-space filter to virtualize
    registers. *)
