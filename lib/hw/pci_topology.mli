(** The PCIe fabric: switches, endpoints, transaction routing, ACS.

    Routing implements the behaviours the paper's confinement argument
    rests on (§3.2.2):

    - Upstream DMA from an endpoint passes its switch chain toward the
      root complex.  If a switch on the path has {e P2P request
      redirection} disabled and the target address hits a peer device's
      BAR below that switch, the transaction is delivered {e directly to
      the peer} — the peer-to-peer DMA attack.  With ACS enabled the
      request continues to the root, where the IOMMU translates it (and
      faults, since MMIO addresses are never in IO page tables).
    - {e Source validation} at the endpoint's upstream switch port rejects
      requests whose requester ID does not match the port.
    - Writes that reach the root and fall in the MSI window are passed to
      the interrupt-remapping check and then to the MSI sink (the kernel's
      interrupt dispatch).

    CPU-initiated MMIO, IO-port and config accesses are also routed here. *)

type t
type switch

type acs = { mutable source_validation : bool; mutable p2p_redirect : bool }

val create : mem:Phys_mem.t -> iommu:Iommu.t -> ioports:Ioport.t -> unit -> t

val root_switch : t -> switch
(** The root complex's internal "switch"; devices attached here sit on root
    ports. *)

val add_switch : t -> parent:switch -> name:string -> switch
val switch_name : switch -> string
val acs : switch -> acs
val switches : t -> switch list

val enable_acs_everywhere : t -> unit
(** What SUD does at startup: source validation + P2P redirection on every
    switch. *)

val attach : t -> switch:switch -> Device.t -> Bus.bdf
(** Attach an endpoint: assigns the next BDF on that switch's bus, carves
    MMIO and IO-port windows for its BARs, programs the BARs, registers IO
    ranges, and installs the DMA host interface.  Returns the BDF. *)

val devices : t -> Device.t list
val find_device : t -> Bus.bdf -> Device.t option
val device_switch : t -> Bus.bdf -> switch

val set_msi_sink : t -> (source:Bus.bdf -> vector:int -> unit) -> unit
(** Install the interrupt controller; MSI messages that pass interrupt
    remapping arrive here. *)

val set_dma_charge : t -> ([ `Hit | `Walk | `Bypass ] -> unit) -> unit
(** Install the cost sink for DMA address translation.  Called once per
    device-initiated DMA with how the IOMMU produced the answer ([`Hit] =
    IOTLB, [`Walk] = two-level table walk, [`Bypass] = passthrough or
    implicit MSI); the kernel maps these to {!Cost_model} charges. *)

(** {1 CPU-initiated access} *)

val cfg_read : t -> Bus.bdf -> off:int -> size:int -> int
val cfg_write : t -> Bus.bdf -> off:int -> size:int -> int -> unit
(** Raw config access — the root's view, used by the kernel.  Untrusted
    drivers never get this; they go through SUD's filter. *)

val mmio_read : t -> addr:int -> size:int -> int
(** CPU read decoded by physical address; raises {!Phys_mem.Bus_error} if
    no BAR claims the address or the device's memory decoding is off. *)

val mmio_write : t -> addr:int -> size:int -> int -> unit

val bar_region : t -> Bus.bdf -> bar:int -> (int * int) option
(** Assigned [(base, size)] of a BAR, if that BAR exists. *)

val io_region : t -> Bus.bdf -> bar:int -> (int * int) option
(** Assigned [(port_base, len)] of an IO BAR. *)

(** {1 Observability}

    Fabric counters live in the {!Sud_obs.Metrics} registry under
    subsystem ["pci"]. *)

val routing_faults : t -> Bus.fault list
(** ACS blocks, source-validation rejections and master aborts recorded by
    the fabric (IOMMU faults are recorded by the IOMMU itself). *)

type metrics = {
  pm_p2p : Sud_obs.Metrics.counter;
  pm_msi : Sud_obs.Metrics.counter;
  pm_ir_blocked : Sud_obs.Metrics.counter;
}

val metrics : t -> metrics

val p2p_delivered : t -> int
  [@@deprecated "read Metrics.get (Pci_topology.metrics t).pm_p2p instead"]
(** Count of peer-to-peer transactions that were delivered directly — each
    one is a successful attack in an unprotected configuration. *)

val msi_delivered : t -> int
  [@@deprecated "read Metrics.get (Pci_topology.metrics t).pm_msi instead"]

val msi_blocked_by_ir : t -> int
  [@@deprecated "read Metrics.get (Pci_topology.metrics t).pm_ir_blocked instead"]
