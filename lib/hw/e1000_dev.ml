module Regs = struct
  let ctrl = 0x0000
  let status = 0x0008
  let eerd = 0x0014
  let icr = 0x00C0
  let itr = 0x00C4
  let ics = 0x00C8
  let ims = 0x00D0
  let imc = 0x00D8
  let rctl = 0x0100
  let tctl = 0x0400
  let tdbal = 0x3800
  let tdbah = 0x3804
  let tdlen = 0x3808
  let tdh = 0x3810
  let tdt = 0x3818
  let rdbal = 0x2800
  let rdbah = 0x2804
  let rdlen = 0x2808
  let rdh = 0x2810
  let rdt = 0x2818
  let ral0 = 0x5400
  let rah0 = 0x5404
  let mrqc = 0x5818

  (* Queue [q]'s ring registers live at the queue-0 offset plus
     [q * queue_stride], e.g. RDT for queue 2 is [rdt + 0x200]. *)
  let queue_stride = 0x100
  let max_queues = 8

  let ctrl_rst = 1 lsl 26
  let status_lu = 1 lsl 1
  let eerd_start = 0x01
  let eerd_done = 0x10
  let rctl_en = 1 lsl 1
  let tctl_en = 1 lsl 1

  let int_txdw = 0x01
  let int_lsc = 0x04
  let int_rxt0 = 0x80

  let desc_size = 16
  let txd_cmd_eop = 0x01
  let txd_cmd_rs = 0x08
  let txd_sta_dd = 0x01
  let rxd_sta_dd = 0x01
  let rxd_sta_eop = 0x02
end

open Regs

type ring = {
  mutable ba : int;
  mutable len : int;
  mutable head : int;
  mutable tail : int;
}

let fresh_ring () = { ba = 0; len = 0; head = 0; tail = 0 }

let ring_reset r =
  r.ba <- 0;
  r.len <- 0;
  r.head <- 0;
  r.tail <- 0

type t = {
  eng : Engine.t;
  dev : Device.t;
  eeprom : int array;            (* 64 16-bit words; 0..2 hold the MAC *)
  queues : int;                  (* ring pairs / MSI-X vectors advertised *)
  mutable regs_ctrl : int;
  mutable regs_eerd : int;
  mutable regs_itr : int;        (* inter-interrupt gap in 256ns units *)
  mutable next_int_at : int;     (* ITR: earliest time the next MSI may fire *)
  mutable int_deferred : bool;
  mutable regs_icr : int;
  mutable regs_ims : int;
  mutable regs_rctl : int;
  mutable regs_tctl : int;
  mutable regs_mrqc : int;       (* active RSS queues; <= 1 disables RSS *)
  txr : ring array;
  rxr : ring array;
  tx_busy : bool array;          (* a TX processing pass is scheduled, per queue *)
  partial_tx : bytes list array; (* fragments until EOP, per queue *)
  mutable ral : int;
  mutable rah : int;
  mutable link_up : bool;
  port : Net_medium.port;
  medium : Net_medium.t;
  mutable n_tx : int;
  mutable n_rx : int;
  mutable n_drop : int;
  mutable n_dma_fault : int;
  mutable n_msi : int;
  n_vec : int array;             (* per-vector MSI-X messages, storm accounting *)
  n_rxq : int array;             (* frames landed per RX queue *)
}

let per_desc_delay = 250 (* ns of device-side processing per descriptor *)

let mac_of_eeprom eeprom =
  let b = Bytes.create 6 in
  for i = 0 to 2 do
    Bytes.set b (2 * i) (Char.chr (eeprom.(i) land 0xff));
    Bytes.set b ((2 * i) + 1) (Char.chr ((eeprom.(i) lsr 8) land 0xff))
  done;
  b

(* Interrupt moderation (ITR): like the real part, the device spaces MSI
   messages at least regs_itr*256ns apart; causes accumulate in ICR and
   are delivered in one (coalesced) interrupt. *)
let fire_msi t =
  t.n_msi <- t.n_msi + 1;
  t.next_int_at <- Engine.now t.eng + (t.regs_itr * 256);
  match Device.raise_msi t.dev with
  | Ok () -> ()
  | Error _ -> t.n_dma_fault <- t.n_dma_fault + 1

let rec raise_irq t cause =
  t.regs_icr <- t.regs_icr lor cause;
  if t.regs_icr land t.regs_ims <> 0 then begin
    let now = Engine.now t.eng in
    if t.regs_itr = 0 || now >= t.next_int_at then fire_msi t
    else if not t.int_deferred then begin
      t.int_deferred <- true;
      ignore
        (Engine.schedule_after t.eng (t.next_int_at - now) (fun () ->
             t.int_deferred <- false;
             raise_irq t 0)
         : Engine.handle)
    end
  end

(* Per-queue completion: in MSI-X mode queue [q] signals its own vector
   (counted per vector, so a storm is attributable); otherwise fall back
   to the legacy coalesced ICR path. *)
let raise_queue_irq t q cause =
  if Pci_cfg.msix_enabled (Device.cfg t.dev) then begin
    t.n_vec.(q) <- t.n_vec.(q) + 1;
    match Device.raise_msix t.dev ~vector:q with
    | Ok () -> ()
    | Error _ -> t.n_dma_fault <- t.n_dma_fault + 1
  end
  else raise_irq t cause

let dma_read t addr len =
  match Device.dma_read t.dev ~addr ~len with
  | Ok b -> Some b
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    None

let dma_write t addr data =
  match Device.dma_write t.dev ~addr ~data with
  | Ok () -> true
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    false

let ring_slots r = if r.len = 0 then 0 else r.len / desc_size

(* Process TX descriptors [head, tail) of one queue; device-paced. *)
let rec process_tx t q =
  let r = t.txr.(q) in
  if t.regs_tctl land tctl_en = 0 || ring_slots r = 0 || r.head = r.tail then
    t.tx_busy.(q) <- false
  else begin
    let slot = r.head in
    let daddr = r.ba + (slot * desc_size) in
    (match dma_read t daddr desc_size with
     | None -> t.tx_busy.(q) <- false
     | Some desc ->
       let buf_addr = Int64.to_int (Bytes.get_int64_le desc 0) in
       let buf_len = Bytes.get_uint16_le desc 8 in
       let cmd = Char.code (Bytes.get desc 11) in
       (match if buf_len = 0 then Some Bytes.empty else dma_read t buf_addr buf_len with
        | None -> t.tx_busy.(q) <- false
        | Some payload ->
          t.partial_tx.(q) <- payload :: t.partial_tx.(q);
          if cmd land txd_cmd_eop <> 0 then begin
            let frame = Bytes.concat Bytes.empty (List.rev t.partial_tx.(q)) in
            t.partial_tx.(q) <- [];
            t.n_tx <- t.n_tx + 1;
            Net_medium.send t.medium t.port frame
          end;
          if cmd land txd_cmd_rs <> 0 then begin
            Bytes.set desc 12 (Char.chr txd_sta_dd);
            ignore (dma_write t daddr desc : bool)
          end;
          r.head <- (slot + 1) mod ring_slots r;
          if r.head = r.tail then begin
            t.tx_busy.(q) <- false;
            raise_queue_irq t q int_txdw
          end
          else
            ignore
              (Engine.schedule_after t.eng per_desc_delay (fun () -> process_tx t q)
               : Engine.handle)))
  end

let kick_tx t q =
  if (not t.tx_busy.(q)) && t.regs_tctl land tctl_en <> 0 then begin
    t.tx_busy.(q) <- true;
    ignore
      (Engine.schedule_after t.eng per_desc_delay (fun () -> process_tx t q)
       : Engine.handle)
  end

(* How many RX queues the incoming-frame dispatcher spreads over. *)
let active_rx_queues t =
  if t.regs_mrqc <= 1 then 1 else min t.regs_mrqc t.queues

let receive t frame =
  let q =
    let nq = active_rx_queues t in
    if nq <= 1 then 0 else Rss.queue_for ~queues:nq frame
  in
  let r = t.rxr.(q) in
  if t.regs_rctl land rctl_en = 0 || ring_slots r = 0 || r.head = r.tail then
    t.n_drop <- t.n_drop + 1
  else begin
    let slot = r.head in
    let daddr = r.ba + (slot * desc_size) in
    match dma_read t daddr desc_size with
    | None -> ()
    | Some desc ->
      let buf_addr = Int64.to_int (Bytes.get_int64_le desc 0) in
      if dma_write t buf_addr frame then begin
        Bytes.set_uint16_le desc 8 (Bytes.length frame);
        Bytes.set desc 12 (Char.chr (rxd_sta_dd lor rxd_sta_eop));
        if dma_write t daddr desc then begin
          r.head <- (slot + 1) mod ring_slots r;
          t.n_rx <- t.n_rx + 1;
          t.n_rxq.(q) <- t.n_rxq.(q) + 1;
          raise_queue_irq t q int_rxt0
        end
      end
  end

let reset t =
  t.regs_ctrl <- 0;
  t.regs_eerd <- 0;
  t.regs_itr <- 0;
  t.next_int_at <- 0;
  t.int_deferred <- false;
  t.regs_icr <- 0;
  t.regs_ims <- 0;
  t.regs_rctl <- 0;
  t.regs_tctl <- 0;
  t.regs_mrqc <- 0;
  Array.iter ring_reset t.txr;
  Array.iter ring_reset t.rxr;
  Array.fill t.tx_busy 0 (Array.length t.tx_busy) false;
  Array.fill t.partial_tx 0 (Array.length t.partial_tx) [];
  let mac = mac_of_eeprom t.eeprom in
  t.ral <-
    Char.code (Bytes.get mac 0)
    lor (Char.code (Bytes.get mac 1) lsl 8)
    lor (Char.code (Bytes.get mac 2) lsl 16)
    lor (Char.code (Bytes.get mac 3) lsl 24);
  t.rah <- Char.code (Bytes.get mac 4) lor (Char.code (Bytes.get mac 5) lsl 8) lor 0x80000000

(* Decompose a ring-register offset: queue index from the stride, base
   register from the remainder.  Returns [None] for non-ring offsets. *)
let ring_reg t off =
  let decode base =
    let d = off - base in
    if d >= 0 && d < max_queues * queue_stride && d mod queue_stride < 0x20 then begin
      let q = d / queue_stride and reg = base + (d mod queue_stride) in
      if q < t.queues then Some (q, reg) else None
    end
    else None
  in
  match decode rdbal with Some _ as r -> r | None -> decode tdbal

(* Register read without side effects (used for sub-word accesses and for
   peers reaching the register file by P2P DMA). *)
let peek t off =
  if off = ctrl then t.regs_ctrl
  else if off = status then if t.link_up then status_lu else 0
  else if off = eerd then t.regs_eerd
  else if off = itr then t.regs_itr
  else if off = icr then t.regs_icr
  else if off = ims then t.regs_ims
  else if off = rctl then t.regs_rctl
  else if off = tctl then t.regs_tctl
  else if off = mrqc then t.regs_mrqc
  else if off = ral0 then t.ral
  else if off = rah0 then t.rah
  else
    match ring_reg t off with
    | None -> 0
    | Some (q, reg) ->
      if reg = tdbal then t.txr.(q).ba land 0xFFFFFFFF
      else if reg = tdbah then t.txr.(q).ba lsr 32
      else if reg = tdlen then t.txr.(q).len
      else if reg = tdh then t.txr.(q).head
      else if reg = tdt then t.txr.(q).tail
      else if reg = rdbal then t.rxr.(q).ba land 0xFFFFFFFF
      else if reg = rdbah then t.rxr.(q).ba lsr 32
      else if reg = rdlen then t.rxr.(q).len
      else if reg = rdh then t.rxr.(q).head
      else if reg = rdt then t.rxr.(q).tail
      else 0

let read32 t off =
  if off = icr then begin
    let v = t.regs_icr in
    t.regs_icr <- 0;
    v
  end
  else peek t off

let write32 t off v =
  let v = v land 0xFFFFFFFF in
  if off = ctrl then begin
    if v land ctrl_rst <> 0 then reset t else t.regs_ctrl <- v
  end
  else if off = eerd then begin
    if v land eerd_start <> 0 then begin
      let addr = (v lsr 8) land 0x3f in
      t.regs_eerd <- (t.eeprom.(addr) lsl 16) lor eerd_done
    end
  end
  else if off = itr then t.regs_itr <- v land 0xFFFF
  else if off = ics then raise_irq t v
  else if off = ims then t.regs_ims <- t.regs_ims lor v
  else if off = imc then t.regs_ims <- t.regs_ims land lnot v
  else if off = rctl then t.regs_rctl <- v
  else if off = tctl then begin
    t.regs_tctl <- v;
    for q = 0 to t.queues - 1 do kick_tx t q done
  end
  else if off = mrqc then t.regs_mrqc <- min v t.queues
  else if off = ral0 then t.ral <- v
  else if off = rah0 then t.rah <- v
  else
    match ring_reg t off with
    | None -> ()
    | Some (q, reg) ->
      if reg = tdbal then t.txr.(q).ba <- t.txr.(q).ba land lnot 0xFFFFFFFF lor v
      else if reg = tdbah then t.txr.(q).ba <- t.txr.(q).ba land 0xFFFFFFFF lor (v lsl 32)
      else if reg = tdlen then t.txr.(q).len <- v
      else if reg = tdh then t.txr.(q).head <- v
      else if reg = tdt then begin
        t.txr.(q).tail <- v;
        kick_tx t q
      end
      else if reg = rdbal then t.rxr.(q).ba <- t.rxr.(q).ba land lnot 0xFFFFFFFF lor v
      else if reg = rdbah then t.rxr.(q).ba <- t.rxr.(q).ba land 0xFFFFFFFF lor (v lsl 32)
      else if reg = rdlen then t.rxr.(q).len <- v
      else if reg = rdh then t.rxr.(q).head <- v
      else if reg = rdt then t.rxr.(q).tail <- v

let sub_access off size =
  let word = off land lnot 3 and shift = (off land 3) * 8 in
  let mask = ((1 lsl (size * 8)) - 1) lsl shift in
  (word, shift, mask)

let mmio_read t ~bar ~off ~size =
  if bar <> 0 then 0
  else if size = 4 && off land 3 = 0 then read32 t off
  else begin
    let word, shift, mask = sub_access off size in
    (peek t word land mask) lsr shift
  end

let mmio_write t ~bar ~off ~size v =
  if bar = 0 then begin
    if size = 4 && off land 3 = 0 then write32 t off v
    else begin
      let word, shift, mask = sub_access off size in
      let merged = peek t word land lnot mask lor ((v lsl shift) land mask) in
      write32 t word merged
    end
  end

let create eng ~mac ~medium ?(queues = 1) () =
  if Bytes.length mac <> 6 then invalid_arg "E1000_dev.create: MAC must be 6 bytes";
  if queues < 1 || queues > max_queues then
    invalid_arg "E1000_dev.create: queues must be 1..8";
  let cfg =
    Pci_cfg.create ~vendor:0x8086 ~device:0x10D3 ~class_code:0x020000
      ~bars:[| Some (Pci_cfg.Mem { size = 0x20000 }) |]
      ()
  in
  Pci_cfg.add_msi_capability cfg;
  Pci_cfg.add_msix_capability cfg ~vectors:queues;
  let eeprom = Array.make 64 0 in
  for i = 0 to 2 do
    eeprom.(i) <-
      Char.code (Bytes.get mac (2 * i)) lor (Char.code (Bytes.get mac ((2 * i) + 1)) lsl 8)
  done;
  let rec t =
    lazy
      (let dev = Device.create ~name:"e1000" ~cfg ~ops:Device.no_io in
       let port =
         Net_medium.attach medium ~name:"e1000" ~rx:(fun frame -> receive (Lazy.force t) frame)
       in
       { eng;
         dev;
         eeprom;
         queues;
         regs_ctrl = 0;
         regs_eerd = 0;
         regs_itr = 0;
         next_int_at = 0;
         int_deferred = false;
         regs_icr = 0;
         regs_ims = 0;
         regs_rctl = 0;
         regs_tctl = 0;
         regs_mrqc = 0;
         txr = Array.init queues (fun _ -> fresh_ring ());
         rxr = Array.init queues (fun _ -> fresh_ring ());
         tx_busy = Array.make queues false;
         partial_tx = Array.make queues [];
         ral = 0;
         rah = 0;
         link_up = true;
         port;
         medium;
         n_tx = 0;
         n_rx = 0;
         n_drop = 0;
         n_dma_fault = 0;
         n_msi = 0;
         n_vec = Array.make queues 0;
         n_rxq = Array.make queues 0 })
  in
  let t = Lazy.force t in
  reset t;
  Device.set_ops t.dev
    { Device.mmio_read = (fun ~bar ~off ~size -> mmio_read t ~bar ~off ~size);
      mmio_write = (fun ~bar ~off ~size v -> mmio_write t ~bar ~off ~size v);
      io_read = (fun ~bar:_ ~off:_ ~size -> (1 lsl (size * 8)) - 1);
      io_write = (fun ~bar:_ ~off:_ ~size:_ _ -> ());
      reset = (fun () -> reset t) };
  t

let device t = t.dev
let mac t = mac_of_eeprom t.eeprom
let queues t = t.queues
let tx_frames t = t.n_tx
let rx_frames t = t.n_rx
let rx_dropped t = t.n_drop
let dma_faults t = t.n_dma_fault
let msi_raised t = t.n_msi + Array.fold_left ( + ) 0 t.n_vec
let msix_raised t ~vector = t.n_vec.(vector)
let rx_queue_frames t ~queue = t.n_rxq.(queue)
