(** A simulated NVMe-style block controller.

    Paired submission/completion queues in host memory (64-byte SQEs,
    16-byte CQEs with a phase tag), per-queue doorbells, one MSI-X
    vector per queue pair, and all data movement by DMA through the
    IOMMU.

    Durability model: writes land in a {e volatile} write cache; only a
    flush command (or a write carrying the FUA flag) moves sectors to
    media.  {!Device.ops.reset} — the supervisor's FLR stand-in — drops
    the cache, so a driver crash genuinely loses unflushed data, which
    is the window the sud-blk replay machinery must cover.

    One-shot fault hooks model lying/buggy firmware for the soak
    harness: a corrupted completion garbles the cid, a dropped
    completion never posts, a dropped flush neither persists nor
    acknowledges (the device never falsely claims durability — the
    host escalates by timeout). *)

module Regs : sig
  val cap_mqes : int
  val cap_nqs : int
  val vs : int
  val cc : int
  val csts : int
  val cap_lo : int
  val cap_hi : int
  val qcfg_base : int
  val qcfg_stride : int
  val sq_base_lo : int
  val sq_base_hi : int
  val sq_size : int
  val cq_base_lo : int
  val cq_base_hi : int
  val cq_size : int
  val db_base : int
  val cc_en : int
  val csts_rdy : int
  val sqe_size : int
  val cqe_size : int
  val op_flush : int
  val op_write : int
  val op_read : int
  val flags_fua : int
  val max_queues : int
  val mqes : int
end

val sector_size : int

type t

val create : Engine.t -> ?queues:int -> ?capacity:int -> unit -> t
(** [queues] hardware queue pairs (1..8, default 4), [capacity] in
    512-byte sectors (default 16384). *)

val device : t -> Device.t
val queues : t -> int
val capacity : t -> int

(** {2 Oracle accessors} — what the invariant checker compares against. *)

val media_sector : t -> lba:int -> bytes option
(** Durable contents of a sector ([None] = never persisted). *)

val cached_sector : t -> lba:int -> bytes option
(** Volatile write-cache contents (lost on reset). *)

val dirty_cache_sectors : t -> int

(** {2 One-shot fault hooks} *)

val inject_corrupt_completion : t -> mask:int -> unit
(** XOR the next completion's cid with [mask]. *)

val inject_drop_completion : t -> unit
val inject_drop_flush : t -> unit

(** {2 Counters} *)

val debug_qp_summary : t -> string
val reads : t -> int
val writes : t -> int
val flushes : t -> int
val fua_writes : t -> int
val dma_faults : t -> int
val irqs_raised : t -> int
val dropped_completions : t -> int
val corrupted_completions : t -> int
val dropped_flushes : t -> int
