type ops = {
  mmio_read : bar:int -> off:int -> size:int -> int;
  mmio_write : bar:int -> off:int -> size:int -> int -> unit;
  io_read : bar:int -> off:int -> size:int -> int;
  io_write : bar:int -> off:int -> size:int -> int -> unit;
  reset : unit -> unit;
}

type host_iface = {
  dma_read : source:Bus.bdf -> addr:int -> len:int -> (bytes, Bus.fault) result;
  dma_write : source:Bus.bdf -> addr:int -> data:bytes -> (unit, Bus.fault) result;
}

type t = {
  dname : string;
  dcfg : Pci_cfg.t;
  mutable dops : ops;
  mutable dbdf : Bus.bdf option;
  mutable host : host_iface option;
  mutable spoof : Bus.bdf option;
}

let no_io =
  let fail _ = failwith "Device: ops not installed" in
  { mmio_read = (fun ~bar:_ ~off:_ ~size:_ -> fail ());
    mmio_write = (fun ~bar:_ ~off:_ ~size:_ _ -> fail ());
    io_read = (fun ~bar:_ ~off:_ ~size:_ -> fail ());
    io_write = (fun ~bar:_ ~off:_ ~size:_ _ -> fail ());
    reset = (fun () -> fail ()) }

let create ~name ~cfg ~ops = { dname = name; dcfg = cfg; dops = ops; dbdf = None; host = None; spoof = None }

let name t = t.dname
let cfg t = t.dcfg
let ops t = t.dops
let set_ops t ops = t.dops <- ops

let bdf t =
  match t.dbdf with
  | Some b -> b
  | None -> failwith (t.dname ^ ": not attached")

let is_attached t = t.dbdf <> None

let attach_to_host t ~bdf host =
  t.dbdf <- Some bdf;
  t.host <- Some host

let set_spoof_source t s = t.spoof <- s

let source t = match t.spoof with Some s -> s | None -> bdf t

let mastering t = Pci_cfg.command_has t.dcfg Pci_cfg.cmd_bus_master

let dma_read t ~addr ~len =
  match t.host with
  | None -> Error (Bus.Bus_abort { addr })
  | Some h ->
    if not (mastering t) then Error (Bus.Bus_abort { addr })
    else h.dma_read ~source:(source t) ~addr ~len

let dma_write t ~addr ~data =
  match t.host with
  | None -> Error (Bus.Bus_abort { addr })
  | Some h ->
    if not (mastering t) then Error (Bus.Bus_abort { addr })
    else h.dma_write ~source:(source t) ~addr ~data

let send_message t ~addr ~data =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int data);
  dma_write t ~addr ~data:b

let raise_msi t =
  if Pci_cfg.msi_enabled t.dcfg && not (Pci_cfg.msi_masked t.dcfg) then
    send_message t ~addr:(Pci_cfg.msi_address t.dcfg) ~data:(Pci_cfg.msi_data t.dcfg)
  else Ok ()

let raise_msix t ~vector =
  if not (Pci_cfg.msix_enabled t.dcfg) || Pci_cfg.msix_func_masked t.dcfg then Ok ()
  else if Pci_cfg.msix_masked t.dcfg ~vector then begin
    (* Suppressed by the per-vector mask bit: latch pending, as the
       spec's pending-bit array does, so software can see the storm it
       is sitting on. *)
    Pci_cfg.msix_set_pending t.dcfg ~vector true;
    Ok ()
  end
  else
    send_message t ~addr:(Pci_cfg.msix_address t.dcfg ~vector)
      ~data:(Pci_cfg.msix_data t.dcfg ~vector)
