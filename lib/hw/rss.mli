(** Receive-side scaling: the flow hash that shards traffic over queues.

    One function shared by every layer that steers by flow — the e1000
    device model uses it to pick the RX queue (and hence the MSI-X
    vector), and the kernel's netdev uses it to pick the TX queue — so
    a flow stays on one queue end to end and per-flow packet order is
    preserved across queues.  The hash covers the Ethernet addresses,
    the ethertype and the first bytes of the payload (the sim
    netstack's protocol byte and port pair). *)

val hash_frame : bytes -> int
(** Stable nonnegative hash of the frame's flow-identifying bytes. *)

val queue_for : queues:int -> bytes -> int
(** Queue index for the frame's flow: the xor-folded [hash_frame]
    reduced mod [queues] (FNV's low bit is a parity function of the
    input, so the fold is what keeps correlated flows off same-parity
    queues); queue 0 when [queues <= 1]. *)

val flow_span : int
(** How many leading frame bytes the hash covers. *)
