(* Unified observability: the metrics registry and the causal trace ring.
   See sud_obs.mli for the design rationale.  Dependency-free on purpose —
   every layer of the repo (hw, kernel, uchan, core) sits above it. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      match s.[i] with
      | '\\' when i + 1 < n ->
        (match s.[i + 1] with
         | '"' -> Buffer.add_char b '"'; go (i + 2)
         | '\\' -> Buffer.add_char b '\\'; go (i + 2)
         | 'n' -> Buffer.add_char b '\n'; go (i + 2)
         | 't' -> Buffer.add_char b '\t'; go (i + 2)
         | 'r' -> Buffer.add_char b '\r'; go (i + 2)
         | 'u' when i + 5 < n ->
           (match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
            | Some code when code < 256 -> Buffer.add_char b (Char.chr code)
            | Some _ | None -> ());
           go (i + 6)
         | c -> Buffer.add_char b c; go (i + 2))
      | c -> Buffer.add_char b c; go (i + 1)
    end
  in
  go 0;
  Buffer.contents b

module Metrics = struct
  type counter = { mutable c_v : int }
  type gauge = { g_read : unit -> int }

  let hist_slots = 64

  type histogram = {
    h_buckets : int array;
    mutable h_count : int;
    mutable h_sum : int;
  }

  type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

  (* The registry references every metric weakly: the handle the owning
     subsystem keeps is the only strong pointer.  A gauge closes over its
     subsystem's state, so a strong registry would root every world ever
     created (page tables, backlog queues, ...) for the life of the
     process — measurably taxing the GC.  Instead a metric simply dies
     with its subsystem and the registry prunes the husk. *)
  type entry = {
    e_subsystem : string;
    e_name : string;
    e_labels : (string * string) list;
    e_read : unit -> metric option;   (* weak deref *)
  }

  type registry = { mutable entries : entry list }   (* newest first *)

  let create_registry () = { entries = [] }
  let default = create_registry ()

  let weaken : type a. a -> (a -> metric) -> unit -> metric option =
    fun x wrap ->
    let w = Weak.create 1 in
    Weak.set w 0 (Some x);
    fun () -> Option.map wrap (Weak.get w 0)

  let alive e = e.e_read () <> None

  let same_key a b =
    a.e_subsystem = b.e_subsystem && a.e_name = b.e_name && a.e_labels = b.e_labels

  (* Replace-on-collision keeps the registry pointing at the live
     instance when worlds or driver generations are recreated with the
     same identity, and (with dead-entry pruning) bounds its size. *)
  let register reg e =
    reg.entries <- e :: List.filter (fun x -> alive x && not (same_key x e)) reg.entries

  let counter ?(registry = default) ?(labels = []) ~subsystem ~name () =
    let c = { c_v = 0 } in
    register registry
      { e_subsystem = subsystem; e_name = name; e_labels = labels;
        e_read = weaken c (fun c -> M_counter c) };
    c

  let gauge ?(registry = default) ?(labels = []) ~subsystem ~name read =
    let g = { g_read = read } in
    register registry
      { e_subsystem = subsystem; e_name = name; e_labels = labels;
        e_read = weaken g (fun g -> M_gauge g) };
    g

  let histogram ?(registry = default) ?(labels = []) ~subsystem ~name () =
    let h = { h_buckets = Array.make hist_slots 0; h_count = 0; h_sum = 0 } in
    register registry
      { e_subsystem = subsystem; e_name = name; e_labels = labels;
        e_read = weaken h (fun h -> M_histogram h) };
    h

  let unregister ?(registry = default) ~subsystem ?name () =
    registry.entries <-
      List.filter
        (fun e ->
           not (e.e_subsystem = subsystem
                && (match name with None -> true | Some n -> e.e_name = n)))
        registry.entries

  let incr c = c.c_v <- c.c_v + 1
  let add c n = c.c_v <- c.c_v + n
  let get c = c.c_v
  let gauge_value g = g.g_read ()

  let bucket_of v =
    if v <= 1 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 1 do
        b := !b + 1;
        v := !v lsr 1
      done;
      min !b (hist_slots - 1)
    end

  let observe h v =
    h.h_buckets.(bucket_of v) <- h.h_buckets.(bucket_of v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v

  let hist_count h = h.h_count
  let hist_sum h = h.h_sum
  let hist_buckets h = Array.copy h.h_buckets

  type value =
    | Counter of int
    | Gauge of int
    | Histogram of { buckets : (int * int) list; count : int; sum : int }

  type sample = { s_name : string; s_labels : (string * string) list; s_value : value }
  type group = { g_subsystem : string; g_samples : sample list }
  type snapshot = group list

  let snapshot ?(registry = default) () =
    registry.entries <- List.filter alive registry.entries;
    let sample_of e =
      match e.e_read () with
      | None -> None
      | Some m ->
        Some
          { s_name = e.e_name;
            s_labels = e.e_labels;
            s_value =
              (match m with
               | M_counter c -> Counter c.c_v
               | M_gauge g -> Gauge (g.g_read ())
               | M_histogram h ->
                 let buckets = ref [] in
                 for i = hist_slots - 1 downto 0 do
                   if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
                 done;
                 Histogram { buckets = !buckets; count = h.h_count; sum = h.h_sum }) }
    in
    let subsystems =
      List.sort_uniq compare (List.map (fun e -> e.e_subsystem) registry.entries)
    in
    List.filter_map
      (fun sub ->
         let samples =
           registry.entries
           |> List.filter (fun e -> e.e_subsystem = sub)
           |> List.filter_map sample_of
           |> List.sort (fun a b -> compare (a.s_name, a.s_labels) (b.s_name, b.s_labels))
         in
         if samples = [] then None else Some { g_subsystem = sub; g_samples = samples })
      subsystems

  let labels_to_string labels =
    if labels = [] then ""
    else
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      ^ "}"

  let to_json snap =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{";
    List.iteri
      (fun gi g ->
         if gi > 0 then Buffer.add_string b ",";
         Buffer.add_string b (Printf.sprintf "\n  \"%s\": {" (json_escape g.g_subsystem));
         List.iteri
           (fun si s ->
              if si > 0 then Buffer.add_string b ",";
              let key = s.s_name ^ labels_to_string s.s_labels in
              Buffer.add_string b (Printf.sprintf "\n    \"%s\": " (json_escape key));
              (match s.s_value with
               | Counter v -> Buffer.add_string b (Printf.sprintf "{ \"counter\": %d }" v)
               | Gauge v -> Buffer.add_string b (Printf.sprintf "{ \"gauge\": %d }" v)
               | Histogram { buckets; count; sum } ->
                 Buffer.add_string b
                   (Printf.sprintf
                      "{ \"histogram\": { \"count\": %d, \"sum\": %d, \"log2_buckets\": { %s } } }"
                      count sum
                      (String.concat ", "
                         (List.map (fun (i, n) -> Printf.sprintf "\"%d\": %d" i n) buckets)))))
           g.g_samples;
         Buffer.add_string b "\n  }")
      snap;
    Buffer.add_string b "\n}\n";
    Buffer.contents b

  (* FNV-1a over the canonical JSON rendering: [snapshot] already sorts
     groups and samples, so equal registries hash equal regardless of
     registration order.  Used by sud-check to assert that a replayed
     schedule reproduces the exact metrics end-state. *)
  let snapshot_hash ?registry () =
    (* A full major collection first: metrics are weakly registered, so
       without it the hash would depend on whether a *previous* run's
       dead subsystems happen to have been collected yet — GC timing,
       not program behaviour. *)
    Gc.full_major ();
    let s = to_json (snapshot ?registry ()) in
    let h = ref 0xCBF29CE484222325L in
    String.iter
      (fun c ->
         h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
      s;
    !h

  let render_table snap =
    let b = Buffer.create 1024 in
    List.iter
      (fun g ->
         Buffer.add_string b (Printf.sprintf "[%s]\n" g.g_subsystem);
         List.iter
           (fun s ->
              let key = s.s_name ^ labels_to_string s.s_labels in
              match s.s_value with
              | Counter v -> Buffer.add_string b (Printf.sprintf "  %-48s %12d\n" key v)
              | Gauge v ->
                Buffer.add_string b (Printf.sprintf "  %-48s %12d (gauge)\n" key v)
              | Histogram { count; sum; buckets } ->
                Buffer.add_string b
                  (Printf.sprintf "  %-48s count %d, sum %d, mean %s\n" key count sum
                     (if count = 0 then "-" else string_of_int (sum / count)));
                List.iter
                  (fun (i, n) ->
                     Buffer.add_string b
                       (Printf.sprintf "    %-46s %12d\n"
                          (Printf.sprintf "[2^%d, 2^%d)" i (i + 1)) n))
                  buckets)
           g.g_samples)
      snap;
    Buffer.contents b
end

module Trace = struct
  type span = {
    sp_id : int;
    sp_parent : int;
    sp_ts : int;
    sp_dur : int;
    sp_cat : string;
    sp_name : string;
    sp_attrs : (string * string) list;
  }

  let dummy =
    { sp_id = 0; sp_parent = 0; sp_ts = 0; sp_dur = 0; sp_cat = ""; sp_name = ""; sp_attrs = [] }

  let enabled = ref false
  let clock = ref (fun () -> 0)
  let cap = ref 16384

  (* Allocated lazily on the first traced span: a tracer that is never
     enabled must cost the rest of the system nothing, including the GC
     marking work a permanently-live 16k-pointer array would add. *)
  let ring = ref [||]
  let n_emitted = ref 0
  let cur = ref 0
  let keys : (string, int) Hashtbl.t = Hashtbl.create 32

  let on () = !enabled
  let set_enabled b = enabled := b
  let set_clock f = clock := f
  let capacity () = !cap

  let reset () =
    if Array.length !ring > 0 then Array.fill !ring 0 (Array.length !ring) dummy;
    n_emitted := 0;
    cur := 0;
    Hashtbl.reset keys

  let set_capacity n =
    if n <= 0 then invalid_arg "Trace.set_capacity";
    cap := n;
    ring := [||];
    n_emitted := 0;
    cur := 0;
    Hashtbl.reset keys

  let emit ?(parent = 0) ?(dur_ns = 0) ?(attrs = []) ~cat ~name () =
    if not !enabled then 0
    else begin
      if Array.length !ring <> !cap then ring := Array.make !cap dummy;
      Stdlib.incr n_emitted;
      let id = !n_emitted in
      let sp =
        { sp_id = id; sp_parent = parent; sp_ts = !clock (); sp_dur = dur_ns;
          sp_cat = cat; sp_name = name; sp_attrs = attrs }
      in
      (!ring).((id - 1) mod Array.length !ring) <- sp;
      id
    end

  let emitted () = !n_emitted
  let retained () = min !n_emitted (Array.length !ring)
  let dropped () = !n_emitted - retained ()

  let spans () =
    let cap = Array.length !ring in
    let r = retained () in
    List.init r (fun i ->
        (* Oldest retained span is emitted-index (emitted - retained). *)
        (!ring).((!n_emitted - r + i) mod cap))

  let current () = !cur
  let set_current id = cur := id

  let with_current id f =
    let saved = !cur in
    cur := id;
    Fun.protect ~finally:(fun () -> cur := saved) f

  let remember k id = Hashtbl.replace keys k id
  let recall k = Option.value ~default:0 (Hashtbl.find_opt keys k)

  (* ---- JSONL ---- *)

  let span_to_line sp =
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf "{\"id\":%d,\"parent\":%d,\"ts\":%d,\"dur\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"attrs\":{"
         sp.sp_id sp.sp_parent sp.sp_ts sp.sp_dur (json_escape sp.sp_cat)
         (json_escape sp.sp_name));
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      sp.sp_attrs;
    Buffer.add_string b "}}";
    Buffer.contents b

  let to_jsonl () =
    String.concat "" (List.map (fun sp -> span_to_line sp ^ "\n") (spans ()))

  let write_jsonl ~path =
    let sps = spans () in
    let oc = open_out path in
    List.iter (fun sp -> output_string oc (span_to_line sp ^ "\n")) sps;
    close_out oc;
    List.length sps

  (* A deliberately small parser for the exact shape span_to_line writes:
     flat object of int fields, two string fields, and a string-to-string
     attrs object.  Quotes inside values are escaped on the way out, so a
     raw '"' is always a delimiter here. *)
  let span_of_line line =
    let n = String.length line in
    let int_field key =
      let pat = "\"" ^ key ^ "\":" in
      match
        let rec find i =
          if i + String.length pat > n then None
          else if String.sub line i (String.length pat) = pat then Some (i + String.length pat)
          else find (i + 1)
        in
        find 0
      with
      | None -> None
      | Some i ->
        let j = ref i in
        while !j < n && (line.[!j] = '-' || (line.[!j] >= '0' && line.[!j] <= '9')) do
          Stdlib.incr j
        done;
        int_of_string_opt (String.sub line i (!j - i))
    in
    let raw_string_at i =
      (* [i] points just past an opening quote; scan to the unescaped close. *)
      let j = ref i in
      let rec go () =
        if !j >= n then None
        else if line.[!j] = '\\' then begin j := !j + 2; go () end
        else if line.[!j] = '"' then Some (String.sub line i (!j - i), !j + 1)
        else begin Stdlib.incr j; go () end
      in
      go ()
    in
    let string_field key =
      let pat = "\"" ^ key ^ "\":\"" in
      let rec find i =
        if i + String.length pat > n then None
        else if String.sub line i (String.length pat) = pat then Some (i + String.length pat)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some i -> Option.map (fun (s, _) -> json_unescape s) (raw_string_at i)
    in
    let attrs () =
      let pat = "\"attrs\":{" in
      let rec find i =
        if i + String.length pat > n then None
        else if String.sub line i (String.length pat) = pat then Some (i + String.length pat)
        else find (i + 1)
      in
      match find 0 with
      | None -> []
      | Some i ->
        let rec pairs i acc =
          if i >= n || line.[i] = '}' then List.rev acc
          else if line.[i] = '"' then
            match raw_string_at (i + 1) with
            | None -> List.rev acc
            | Some (k, j) ->
              if j + 1 < n && line.[j] = ':' && line.[j + 1] = '"' then
                match raw_string_at (j + 2) with
                | None -> List.rev acc
                | Some (v, j2) -> pairs j2 ((json_unescape k, json_unescape v) :: acc)
              else List.rev acc
          else pairs (i + 1) acc
        in
        pairs i []
    in
    match int_field "id", int_field "parent", int_field "ts", int_field "dur",
          string_field "cat", string_field "name"
    with
    | Some id, Some parent, Some ts, Some dur, Some cat, Some name ->
      Some
        { sp_id = id; sp_parent = parent; sp_ts = ts; sp_dur = dur; sp_cat = cat;
          sp_name = name; sp_attrs = attrs () }
    | _ -> None

  let chain_exists sps chain =
    match chain with
    | [] -> true
    | (c0, n0) :: rest ->
      (* For each span matching the head, try to extend by direct parent
         links through the rest of the chain. *)
      let by_parent : (int, span) Hashtbl.t = Hashtbl.create 256 in
      List.iter (fun sp -> Hashtbl.add by_parent sp.sp_parent sp) sps;
      let rec extend id = function
        | [] -> true
        | (c, nm) :: tl ->
          List.exists
            (fun sp -> sp.sp_cat = c && sp.sp_name = nm && extend sp.sp_id tl)
            (Hashtbl.find_all by_parent id)
      in
      List.exists
        (fun sp -> sp.sp_cat = c0 && sp.sp_name = n0 && extend sp.sp_id rest)
        sps
end
