(** Unified observability for the SUD reproduction.

    Everything the paper's argument rests on crosses the kernel↔driver
    boundary: uchan RPCs, IOMMU translations, config-space accesses,
    interrupt deliveries, supervisor state transitions.  This module is
    the single place that evidence is recorded:

    - {!Metrics}: a process-wide registry of named counters, gauges and
      log2-bucketed histograms.  Subsystems register their handles once
      at creation (labelled by BDF, channel, device name, …) and mutate
      them on the hot path at field-write cost; tooling snapshots the
      whole registry as a typed tree and renders it as a table or JSON.
    - {!Trace}: a bounded ring of timestamped spans with parent ids,
      emitted at the load-bearing boundary crossings, so a soak run
      yields a causal machine-readable timeline (JSONL) in which a DMA
      fault can be followed back to the RPC that provoked it.

    Tracing is disabled by default and compile-out cheap: every call
    site guards on {!Trace.on}, a single load-and-branch, so the
    datapath benches regress by noise only (the bench guard enforces
    ≤ 5% vs the BENCH_2 baseline). *)

module Metrics : sig
  (** {1 Handles}

      Mutation is a single field write (plus one pointer load), so a
      handle can sit directly on a hot path where a [mutable int]
      used to be. *)

  type counter
  (** Monotonic event count. *)

  type gauge
  (** Instantaneous value, computed by a callback at snapshot time. *)

  type histogram
  (** Log2-bucketed value distribution: bucket [i] counts observations
      [v] with [2^i <= v < 2^(i+1)] ([v <= 1] lands in bucket 0).
      Invariant: the bucket counts always sum to the observation
      count. *)

  type registry

  val create_registry : unit -> registry

  val default : registry
  (** The process-wide registry every subsystem registers into unless
      told otherwise.  Re-registering the same (subsystem, name,
      labels) key replaces the old entry, so short-lived instances
      (test worlds, driver generations) don't accumulate. *)

  (** {1 Registration}

      [subsystem] groups metrics in the snapshot tree ("iommu",
      "uchan", …); [labels] distinguish instances (BDF, channel name,
      driver generation). *)

  val counter :
    ?registry:registry -> ?labels:(string * string) list ->
    subsystem:string -> name:string -> unit -> counter

  val gauge :
    ?registry:registry -> ?labels:(string * string) list ->
    subsystem:string -> name:string -> (unit -> int) -> gauge

  val histogram :
    ?registry:registry -> ?labels:(string * string) list ->
    subsystem:string -> name:string -> unit -> histogram

  val unregister : ?registry:registry -> subsystem:string -> ?name:string -> unit -> unit
  (** Drop entries (all of a subsystem, or one name) — for tests. *)

  (** {1 Mutation and reads} *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val get : counter -> int
  val gauge_value : gauge -> int
  val observe : histogram -> int -> unit
  val hist_count : histogram -> int
  val hist_sum : histogram -> int
  val hist_buckets : histogram -> int array
  (** A copy of the 64 log2 bucket counts. *)

  (** {1 Snapshot: the typed tree} *)

  type value =
    | Counter of int
    | Gauge of int
    | Histogram of { buckets : (int * int) list;  (** (log2 bucket, count), nonzero only *)
                     count : int;
                     sum : int }

  type sample = { s_name : string; s_labels : (string * string) list; s_value : value }
  type group = { g_subsystem : string; g_samples : sample list }
  type snapshot = group list

  val snapshot : ?registry:registry -> unit -> snapshot
  (** Groups sorted by subsystem, samples by (name, labels). *)

  val to_json : snapshot -> string
  val render_table : snapshot -> string

  val snapshot_hash : ?registry:registry -> unit -> int64
  (** FNV-1a fingerprint of the canonical (sorted) JSON snapshot — equal
      iff the registries' observable state is equal.  Runs a full major
      collection first so only live subsystems contribute (weak entries
      from torn-down worlds would otherwise leak GC timing into the
      hash).  sud-check compares this across record and replay runs. *)
end

module Trace : sig
  (** {1 Spans} *)

  type span = {
    sp_id : int;             (** unique since the last {!reset}, starting at 1 *)
    sp_parent : int;         (** 0 = no parent *)
    sp_ts : int;             (** clock at emission (engine ns) *)
    sp_dur : int;            (** 0 for instant events *)
    sp_cat : string;         (** subsystem: "uchan", "iommu", "sup", … *)
    sp_name : string;        (** event within the subsystem *)
    sp_attrs : (string * string) list;
  }

  val on : unit -> bool
  (** The call-site guard: a single load.  Every instrumentation point
      is [if Trace.on () then …] so a disabled tracer costs one
      branch and no allocation. *)

  val set_enabled : bool -> unit
  val set_clock : (unit -> int) -> unit
  (** Installed by [Kernel.boot] as [Engine.now]; defaults to a zero
      clock. *)

  val set_capacity : int -> unit
  (** Resize the ring (and {!reset} it).  Default 16384 spans. *)

  val capacity : unit -> int

  val emit :
    ?parent:int -> ?dur_ns:int -> ?attrs:(string * string) list ->
    cat:string -> name:string -> unit -> int
  (** Append a span; returns its id, or 0 when tracing is disabled.
      When the ring is full the oldest span is dropped (and counted),
      so the tail of a run is always retained. *)

  (** {1 Accounting}

      Invariant (the QCheck property): [emitted () = retained () +
      dropped ()] at all times. *)

  val emitted : unit -> int
  val retained : unit -> int
  val dropped : unit -> int

  val spans : unit -> span list
  (** Retained spans, oldest first. *)

  val reset : unit -> unit
  (** Clear spans, ids, correlation keys and the ambient span. *)

  (** {1 Causal context}

      Cross-layer causality without threading ids through every
      signature: a subsystem either sets the ambient current span for
      a dynamic extent ([with_current]) or publishes a correlation key
      ("uchan.rpc.last", "iommu.fault.last:<bdf>") that a downstream
      layer recalls as a parent. *)

  val current : unit -> int
  val set_current : int -> unit
  val with_current : int -> (unit -> 'a) -> 'a
  val remember : string -> int -> unit
  val recall : string -> int
  (** 0 when the key was never remembered (or since {!reset}). *)

  (** {1 JSONL export} *)

  val to_jsonl : unit -> string
  (** One JSON object per line, oldest first. *)

  val write_jsonl : path:string -> int
  (** Returns the number of spans written. *)

  val span_of_line : string -> span option
  (** Parse one line of {!to_jsonl} output back into a span. *)

  val chain_exists : span list -> (string * string) list -> bool
  (** [chain_exists spans [(c1,n1); (c2,n2); …]] holds when spans
      s1, s2, … exist with [si] matching [(ci,ni)] and each
      [s(i+1).sp_parent = si.sp_id] — a direct causal chain. *)
end
