(* Live Byzantine protocol fuzzer for the uchan interface.

   Scenarios show a handful of handwritten attacks contained once; this
   module drives a *real* driver (honest E1000 under supervision, live
   UDP traffic) while a seeded mutation engine sits between it and the
   kernel worker, garbling marshalled u2k slots in flight
   ([Uchan.set_u2k_mutator]), forging slots the driver never sent
   ([Uchan.inject_raw]) and hammering the doorbell
   ([Uchan.notify_storm]).  Every mutation class maps onto a specific
   detector — a {!Conformance} violation class, the defensive
   unmarshaller's [um_malformed], or the {!Quota} notification bucket —
   and the campaign asserts that each class was detected at least once
   and that the soak containment invariants (kernel secret intact, grant
   revoked, no stale IOTLB translation) held across every one of the
   driver deaths the mutations provoked.  All randomness comes from one
   seed, so a failing campaign replays exactly. *)

type mutation =
  | Kind_swap          (* rewrite the kind field to a wild opcode *)
  | Seq_skew           (* replay an old seq / invent one from the future *)
  | Stale_epoch        (* stamp the slot with a dead generation's epoch *)
  | Len_bomb           (* payload-length / batch-count field past the slot *)
  | Completion_forge   (* forge a reply to an RPC the kernel never issued *)
  | Notify_flood       (* doorbell storm with nothing behind the kicks *)

let all_mutations =
  [ Kind_swap; Seq_skew; Stale_epoch; Len_bomb; Completion_forge; Notify_flood ]

let mutation_name = function
  | Kind_swap -> "kind_swap"
  | Seq_skew -> "seq_skew"
  | Stale_epoch -> "stale_epoch"
  | Len_bomb -> "len_bomb"
  | Completion_forge -> "completion_forge"
  | Notify_flood -> "notify_flood"

(* The wire facts the mutators exploit, as a malicious driver would read
   them off the shared ring: scalar slots carry kind(u16)@0, seq(u32)@2,
   plen(u8)@11, epoch(u16)@12; batch slots carry kind(u16)@0,
   count(u8)@2, epoch(u16)@3; replies are flagged by kind bit 15. *)
let off_kind = 0
let off_seq = 2
let off_plen = 11
let off_epoch = 12
let off_batch_count = 2
let off_batch_epoch = 3
let wire_reply_flag = 0x8000
let wild_kind = 0xEE       (* outside every proxy class's vocabulary *)
let control_kind = 104     (* down_carrier: Control in the proxy DFA *)
let future_seq = 0x3FFFFFF

(* ---- in-flight slot mutators ---- *)

(* Force the slot into a deterministic detector: for seq/kind games the
   seq (and reply flag) must not trip an earlier check first, so the
   mutator rewrites both fields together. *)

let mut_kind_swap slot =
  (* Works on scalar and batch slots alike (the kind sits at offset 0 in
     both): the adjudicator classifies 0xEE as Unknown_kind. *)
  Bytes.set_uint16_le slot off_kind wild_kind;
  if not (Msg.Batch.is_batch slot) then Bytes.set_int32_le slot off_seq 0l

let mut_seq_skew ~future slot =
  (* Scalar only: turn the slot into a non-reply Control downcall whose
     seq is either far above the issue high-water mark (Seq_from_future)
     or replays seq 1 (Nonmonotone_seq once any sync downcall has been
     accepted; also Seq_from_future on a virgin channel). *)
  Bytes.set_uint16_le slot off_kind control_kind;
  Bytes.set_int32_le slot off_seq (Int32.of_int (if future then future_seq else 1))

let mut_stale_epoch slot =
  let off = if Msg.Batch.is_batch slot then off_batch_epoch else off_epoch in
  Bytes.set_uint16_le slot off ((Bytes.get_uint16_le slot off + 0x1111) land Msg.max_epoch)

let mut_len_bomb slot =
  if Msg.Batch.is_batch slot then
    (* Wild frame count: the defensive batch decode rejects the slot. *)
    Bytes.set_uint8 slot off_batch_count 0xFF
  else
    (* Payload length reaching past the slot: unmarshal_view rejects. *)
    Bytes.set_uint8 slot off_plen 0xFF

(* ---- campaign ---- *)

type fuzz_report = {
  fz_seed : int64;
  fz_planned : int;
  fz_applied : int;
  fz_skipped : int;
  fz_by_class : (string * int) list;
  fz_detected : (string * int) list;
  fz_detections : int;
  fz_restarts : int;
  fz_deaths : int;
  fz_state : Supervisor.state;
  fz_violations : string list;
  fz_sched : Fault_inject.sched_summary;
}

let count tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

(* Per-generation counters die with the generation's channel, so fold
   the dying channel's counts in at detection time (it is still current)
   and the final generation's at the end — same discipline as the soak's
   malformed accounting. *)
type accum = {
  acc_conf : (string, int) Hashtbl.t;   (* conformance class -> total *)
  mutable acc_malformed : int;
}

let snapshot_chan acc sv =
  match Supervisor.chan sv with
  | Some c when not (Uchan.is_closed c) ->
    List.iter
      (fun (cls, n) ->
         if n > 0 then
           Hashtbl.replace acc.acc_conf cls (n + Option.value ~default:0 (Hashtbl.find_opt acc.acc_conf cls)))
      (Conformance.class_counts (Uchan.conformance c));
    let um = Uchan.metrics c in
    acc.acc_malformed <- acc.acc_malformed + Sud_obs.Metrics.get um.Uchan.um_malformed
  | Some _ | None -> ()

(* What "this mutation class was detected" means, given the accumulated
   evidence.  Seq skew legitimately lands as either seq violation class
   depending on channel history; everything else is one-to-one. *)
let detected_count acc ~overflows = function
  | Kind_swap -> get acc.acc_conf "unknown_kind"
  | Seq_skew -> get acc.acc_conf "seq_from_future" + get acc.acc_conf "nonmonotone_seq"
  | Stale_epoch -> get acc.acc_conf "bad_epoch"
  | Len_bomb -> acc.acc_malformed
  | Completion_forge -> get acc.acc_conf "forged_completion"
  | Notify_flood -> overflows

let campaign ?sched ?seed ?(n_mutations = 600) ?(storm_kicks = 6_000) () =
  let seed = match seed with Some s -> s | None -> Fault_inject.dseed "fuzz" in
  let w = Fault_inject.make_world () in
  let rec_ = Option.map (fun s -> Sched.install w.Fault_inject.eng s) sched in
  let report =
    Fault_inject.in_world ~max_ms:300_000 w (fun () ->
      let open Fault_inject in
      let secret_addr = Phys_mem.alloc_pages w.k.Kernel.mem ~pages:1 in
      Phys_mem.write w.k.Kernel.mem ~addr:secret_addr (Bytes.of_string secret);
      let sv =
        match
          Supervisor.start w.k w.sp ~policy:(soak_policy ~max_restarts:max_int) ~bdf:w.bdf
            honest_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("proto_fuzz: supervised start failed: " ^ e)
      in
      let ctx = install_invariants w sv ~secret_addr in
      let acc = { acc_conf = Hashtbl.create 8; acc_malformed = 0 } in
      Supervisor.on_event sv (function
          | Supervisor.Fault_detected _ -> snapshot_chan acc sv
          | _ -> ());
      let dev = Supervisor.netdev sv in
      (match Netstack.ifconfig_up w.k.Kernel.net dev with
       | Ok () -> ()
       | Error e -> failwith ("proto_fuzz: ifconfig up: " ^ e));
      (* Bursts so the driver's tx_free downcalls coalesce into batch
         slots: the mutators must see both slot shapes. *)
      let tr = start_traffic ~burst:4 w dev ~gap_ns:400_000 in
      let rng = Rng.create ~seed in
      let applied = Hashtbl.create 8 in
      let skipped = ref 0 in
      let extra = ref [] in
      let sleep ns = ignore (Fiber.sleep w.eng ns : Fiber.wake) in
      let rec wait_running budget =
        if budget > 0 && Supervisor.state sv <> Supervisor.Running then begin
          sleep 1_000_000;
          wait_running (budget - 1)
        end
      in
      (* Install a one-shot mutator on the current generation's channel
         and wait (bounded) for live traffic to trigger it. *)
      let apply_mutator chan mutate =
        let fired = ref false in
        Uchan.set_u2k_mutator chan
          (Some
             (fun ~queue:_ slot ->
                if not !fired then begin
                  mutate slot;
                  fired := true
                end));
        let rec wait budget =
          if (not !fired) && budget > 0 && not (Uchan.is_closed chan) then begin
            sleep 500_000;
            wait (budget - 1)
          end
        in
        wait 100;
        if not (Uchan.is_closed chan) then Uchan.set_u2k_mutator chan None;
        !fired
      in
      (* Scalar-only mutations wrap their mutator so batch slots pass
         through untouched until a scalar one shows up. *)
      let scalar_only f slot = if not (Msg.Batch.is_batch slot) then f slot in
      let apply m =
        match Supervisor.chan sv with
        | None -> false
        | Some chan when Uchan.is_closed chan -> false
        | Some chan ->
          (match m with
           | Kind_swap -> apply_mutator chan mut_kind_swap
           | Seq_skew ->
             let future = Rng.int rng 2 = 0 in
             apply_mutator chan (scalar_only (mut_seq_skew ~future))
           | Stale_epoch -> apply_mutator chan mut_stale_epoch
           | Len_bomb -> apply_mutator chan mut_len_bomb
           | Completion_forge ->
             let ep = Uchan.epoch chan in
             Uchan.inject_raw chan (fun slot ->
                 Msg.marshal_into
                   (Msg.make ~seq:future_seq ~epoch:ep ~kind:control_kind ())
                   slot;
                 Bytes.set_uint16_le slot off_kind (wire_reply_flag lor control_kind))
           | Notify_flood ->
             Uchan.notify_storm chan storm_kicks;
             true)
      in
      let n_classes = List.length all_mutations in
      let class_arr = Array.of_list all_mutations in
      for i = 0 to n_mutations - 1 do
        (* Round-robin through the classes (coverage guaranteed), with a
           seeded draw inside Seq_skew for direction. *)
        let m = class_arr.(i mod n_classes) in
        wait_running 2_000;
        if Supervisor.state sv = Supervisor.Running && apply m then begin
          count applied (mutation_name m);
          (* Give the escalation a couple of watchdog ticks to land
             before aiming the next mutation. *)
          sleep 2_000_000
        end
        else incr skipped
      done;
      (* Let the last mutation's detection land and the recovery it
         provokes finish — a storm's overflow is observed a tick after
         the loop ends, so the Running check must come after the settle,
         not before it. *)
      sleep 20_000_000;
      tr.tr_stop <- true;
      sleep 10_000_000;
      wait_running 2_000;
      snapshot_chan acc sv;
      let overflows = Quota.notify_overflows (Supervisor.quota sv) in
      let violate fmt = Printf.ksprintf (fun s -> extra := s :: !extra) fmt in
      List.iter
        (fun m ->
           let n = mutation_name m in
           if get applied n = 0 then violate "mutation class %s was never applied" n
           else if detected_count acc ~overflows m = 0 then
             violate "mutation class %s applied %d times but never detected" n (get applied n))
        all_mutations;
      if Supervisor.state sv <> Supervisor.Running then
        violate "campaign ended with the supervisor not Running";
      let st = Supervisor.stats sv in
      { fz_seed = seed;
        fz_planned = n_mutations;
        fz_applied = Hashtbl.fold (fun _ n a -> n + a) applied 0;
        fz_skipped = !skipped;
        fz_by_class = List.map (fun m -> (mutation_name m, get applied (mutation_name m))) all_mutations;
        fz_detected =
          List.map (fun m -> (mutation_name m, detected_count acc ~overflows m)) all_mutations;
        fz_detections = st.Supervisor.st_detections;
        fz_restarts = st.Supervisor.st_restarts;
        fz_deaths = invariant_deaths ctx;
        fz_state = Supervisor.state sv;
        fz_violations = invariant_violations ctx @ List.rev !extra;
        fz_sched = Fault_inject.pending_sched })
  in
  { report with
    fz_sched =
      Fault_inject.finish_sched ~scenario:"fuzz" ~seed ~sched ~eng:w.Fault_inject.eng rec_
        ~violations:report.fz_violations }

(* ---- protocol-violation crash loop: the restart budget must quarantine ---- *)

type quarantine_report = {
  pq_restarts : int;
  pq_quarantined : bool;
  pq_violations : string list;
}

let quarantine_campaign ?(max_restarts = 3) () =
  let w = Fault_inject.make_world () in
  Fault_inject.in_world w (fun () ->
      let open Fault_inject in
      let secret_addr = Phys_mem.alloc_pages w.k.Kernel.mem ~pages:1 in
      Phys_mem.write w.k.Kernel.mem ~addr:secret_addr (Bytes.of_string secret);
      let sv =
        match
          Supervisor.start w.k w.sp ~policy:(soak_policy ~max_restarts) ~bdf:w.bdf
            honest_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("proto_fuzz: quarantine start failed: " ^ e)
      in
      let ctx = install_invariants w sv ~secret_addr in
      let dev = Supervisor.netdev sv in
      (match Netstack.ifconfig_up w.k.Kernel.net dev with
       | Ok () -> ()
       | Error e -> failwith ("proto_fuzz: ifconfig up: " ^ e));
      let tr = start_traffic w dev ~gap_ns:400_000 in
      (* Every fresh generation speaks out of protocol immediately: the
         supervisor must burn its restart budget and quarantine. *)
      ignore
        (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"proto-looper"
           (fun () ->
              let rec loop () =
                if Supervisor.state sv <> Supervisor.Quarantined then begin
                  (match Supervisor.chan sv with
                   | Some chan
                     when (not (Uchan.is_closed chan))
                          && Supervisor.state sv = Supervisor.Running ->
                     Uchan.set_u2k_mutator chan
                       (Some (fun ~queue:_ slot -> mut_kind_swap slot))
                   | Some _ | None -> ());
                  ignore (Fiber.sleep w.eng 2_000_000 : Fiber.wake);
                  loop ()
                end
              in
              loop ())
         : Fiber.t);
      let rec wait budget =
        if budget > 0 && Supervisor.state sv <> Supervisor.Quarantined then begin
          ignore (Fiber.sleep w.eng 10_000_000 : Fiber.wake);
          wait (budget - 1)
        end
      in
      wait 1_000;
      tr.tr_stop <- true;
      let st = Supervisor.stats sv in
      { pq_restarts = st.Supervisor.st_restarts;
        pq_quarantined = Supervisor.state sv = Supervisor.Quarantined;
        pq_violations = invariant_violations ctx })
