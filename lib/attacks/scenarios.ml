type outcome = {
  attack : string;
  config : string;
  contained : bool;
  evidence : string;
}

(* ---- world plumbing ---- *)

type world = {
  eng : Engine.t;
  k : Kernel.t;
  sp : Safe_pci.t;
  medium : Net_medium.t;
  nic : E1000_dev.t;          (* the attacker's device *)
  victim : E1000_dev.t;       (* a sibling NIC on the same switch *)
  bdf : Bus.bdf;
  victim_bdf : Bus.bdf;
  snoop : bytes list ref;     (* every frame that crossed the medium *)
}

let make_world ?iommu_mode ?(enable_acs = true) () =
  let eng = Engine.create () in
  let k = Kernel.boot ?iommu_mode ~enable_acs eng in
  let medium = Net_medium.create eng () in
  let snoop = ref [] in
  ignore
    (Net_medium.attach medium ~name:"snoop" ~rx:(fun f -> snoop := f :: !snoop)
     : Net_medium.port);
  let nic = E1000_dev.create eng ~mac:(Bytes.of_string "\x02\x00\x00\x00\x00\x01") ~medium () in
  let victim = E1000_dev.create eng ~mac:(Bytes.of_string "\x02\x00\x00\x00\x00\x02") ~medium () in
  let sw =
    Pci_topology.add_switch k.Kernel.topo ~parent:(Pci_topology.root_switch k.Kernel.topo)
      ~name:"plx-switch"
  in
  if enable_acs then Pci_topology.enable_acs_everywhere k.Kernel.topo;
  let bdf = Kernel.attach_pci k ~switch:sw (E1000_dev.device nic) in
  let victim_bdf = Kernel.attach_pci k ~switch:sw (E1000_dev.device victim) in
  let sp = Safe_pci.init k in
  { eng; k; sp; medium; nic; victim; bdf; victim_bdf; snoop }

(* Run [main] as a fiber and drive the engine; returns its result. *)
let in_world w main =
  let result = ref None in
  ignore
    (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"scenario" (fun () ->
         result := Some (main ()))
     : Fiber.t);
  Engine.run ~max_time:(Engine.now w.eng + 5_000_000_000) w.eng;
  match !result with
  | Some r -> r
  | None -> failwith "scenario did not complete"

let secret = "TOPSECRET-CRYPTOKEY-0xDEADBEEF"

let plant_secret w =
  let addr = Phys_mem.alloc_pages w.k.Kernel.mem ~pages:1 in
  Phys_mem.write w.k.Kernel.mem ~addr (Bytes.of_string secret);
  addr

let contains_substring hay needle =
  let n = Bytes.length hay and m = String.length needle in
  let rec scan i =
    i + m <= n && (Bytes.sub_string hay i m = needle || scan (i + 1))
  in
  m > 0 && scan 0

let leaked w = List.exists (fun f -> contains_substring f secret) !(w.snoop)

let start_mal w ?(defensive_copy = true) drv =
  match Driver_host.launch w.k w.sp ~bdf:w.bdf (Driver_host.net ~defensive_copy ()) drv with
  | Ok s -> s
  | Error e -> failwith ("malicious driver did not start: " ^ e)

let settle w ms = ignore (Fiber.sleep w.eng (ms * 1_000_000) : Fiber.wake)

(* ---- 1. DMA read (exfiltration) ---- *)

let dma_read_exfiltration ~sud =
  let w = make_world () in
  in_world w (fun () ->
      let addr = plant_secret w in
      if sud then begin
        let drv =
          Mal_nic.driver
            ~on_open:(fun t ->
                Mal_nic.dma_read_via_tx t ~target:addr ~len:(String.length secret);
                Ok ())
            ()
        in
        let s = start_mal w drv in
        ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
        settle w 5;
        let faults = Iommu.faults w.k.Kernel.iommu in
        { attack = "DMA read (exfiltration)";
          config = "SUD, VT-d";
          contained = (not (leaked w)) && faults <> [];
          evidence =
            Printf.sprintf "secret %s; %d IOMMU fault(s); device saw %d DMA aborts"
              (if leaked w then "LEAKED onto the wire" else "never left memory")
              (List.length faults) (E1000_dev.dma_faults w.nic) }
      end
      else begin
        (* Baseline: the same malicious code as a trusted in-kernel driver. *)
        (match Kenv_native.pcidev w.k w.bdf ~label:"kernel:mal" with
         | Error e -> failwith e
         | Ok pdev ->
           let env = Kenv_native.env w.k ~label:"kernel:mal" in
           let drv =
             Mal_nic.driver
               ~on_open:(fun t ->
                   Mal_nic.dma_read_via_tx t ~target:addr ~len:(String.length secret);
                   Ok ())
               ()
           in
           let cb =
             { Driver_api.nc_rx = (fun ~queue:_ ~addr:_ ~len:_ -> ());
               nc_tx_free = (fun ~queue:_ ~token:_ -> ());
               nc_tx_done = (fun ~queue:_ -> ());
               nc_carrier = ignore }
           in
           (match drv.Driver_api.nd_probe env pdev cb with
            | Error e -> failwith e
            | Ok inst -> ignore (inst.Driver_api.ni_open () : (unit, string) result)));
        settle w 5;
        { attack = "DMA read (exfiltration)";
          config = "trusted in-kernel driver (no SUD)";
          contained = not (leaked w);
          evidence =
            (if leaked w then "secret broadcast on the wire — total compromise"
             else "secret unexpectedly did not leak") }
      end)

(* ---- 2. DMA write (corruption) ---- *)

let dma_write_corruption () =
  let w = make_world () in
  in_world w (fun () ->
      let addr = plant_secret w in
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              Mal_nic.dma_write_via_rx t ~target:addr;
              Ok ())
          ()
      in
      let s = start_mal w drv in
      ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      (* The trigger: any frame on the medium is received by the device
         and DMA-written to the target. *)
      let port = Net_medium.attach w.medium ~name:"trigger" ~rx:ignore in
      Net_medium.send w.medium port (Bytes.make 64 '\xEE');
      settle w 5;
      let now = Phys_mem.read w.k.Kernel.mem ~addr ~len:(String.length secret) in
      let intact = Bytes.to_string now = secret in
      { attack = "DMA write (kernel memory corruption)";
        config = "SUD, VT-d";
        contained = intact && Iommu.faults w.k.Kernel.iommu <> [];
        evidence =
          Printf.sprintf "kernel page %s; %d IOMMU fault(s)"
            (if intact then "intact" else "CORRUPTED")
            (List.length (Iommu.faults w.k.Kernel.iommu)) })

(* ---- 3. peer-to-peer DMA ---- *)

let peer_to_peer ~acs =
  let w = make_world ~enable_acs:acs () in
  in_world w (fun () ->
      (* Victim's BAR0; its RAL0 register holds the low MAC word. *)
      let victim_bar, _ =
        match Pci_topology.bar_region w.k.Kernel.topo w.victim_bdf ~bar:0 with
        | Some r -> r
        | None -> failwith "victim has no BAR"
      in
      let target = victim_bar + E1000_dev.Regs.ral0 in
      let before = (Device.ops (E1000_dev.device w.victim)).Device.mmio_read
          ~bar:0 ~off:E1000_dev.Regs.ral0 ~size:4 in
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              (* Write the scratch page's first bytes over the victim's
                 registers via device-to-device DMA. *)
              t.Mal_nic.buf.Driver_api.dma_write ~off:0 (Bytes.make 4 '\xAA');
              Mal_nic.dma_write_via_rx t ~target;
              Ok ())
          ()
      in
      let s = start_mal w drv in
      ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      let port = Net_medium.attach w.medium ~name:"trigger" ~rx:ignore in
      Net_medium.send w.medium port (Bytes.make 64 '\xAA');
      settle w 5;
      let after = (Device.ops (E1000_dev.device w.victim)).Device.mmio_read
          ~bar:0 ~off:E1000_dev.Regs.ral0 ~size:4 in
      let untouched = before = after in
      { attack = "peer-to-peer DMA into sibling BAR";
        config = (if acs then "PCIe ACS enabled" else "ACS disabled (legacy switch)");
        contained = untouched;
        evidence =
          Printf.sprintf "victim RAL0 %s (p2p transactions delivered: %d)"
            (if untouched then "untouched" else "OVERWRITTEN")
            (Sud_obs.Metrics.get (Pci_topology.metrics w.k.Kernel.topo).Pci_topology.pm_p2p) })

(* ---- 4. requester-ID spoofing ---- *)

let source_spoofing ~validation =
  let w = make_world ~enable_acs:validation () in
  in_world w (fun () ->
      let addr = plant_secret w in
      (* Start a SUD-confined driver so the attacker's device has an
         (empty) IOMMU domain of its own... *)
      let drv = Mal_nic.driver ~on_open:(fun _ -> Ok ()) () in
      let s = start_mal w drv in
      ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      settle w 2;
      (* ...then have the (compromised) device forge the trusted sibling's
         requester ID on a raw DMA read of the secret.  The sibling runs
         in passthrough, so without source validation the forged request
         translates under its identity. *)
      Device.set_spoof_source (E1000_dev.device w.nic) (Some w.victim_bdf);
      let result =
        Device.dma_read (E1000_dev.device w.nic) ~addr ~len:(String.length secret)
      in
      Device.set_spoof_source (E1000_dev.device w.nic) None;
      let stolen =
        match result with
        | Ok b -> Bytes.to_string b = secret
        | Error _ -> false
      in
      { attack = "requester-ID spoofing";
        config =
          (if validation then "ACS source validation on" else "source validation off");
        contained = not stolen;
        evidence =
          Printf.sprintf "forged-ID DMA %s; routing faults: %d"
            (if stolen then "READ THE SECRET under the victim's identity" else "rejected")
            (List.length (Pci_topology.routing_faults w.k.Kernel.topo)) })

(* ---- 5. interrupt storm ---- *)

let interrupt_storm () =
  let w = make_world () in
  in_world w (fun () ->
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              (* Register a handler that never finishes, then make the
                 device interrupt forever: unthrottled (ITR=0), interrupt
                 forced in a tight device-side loop via ICS. *)
              (match
                 t.Mal_nic.pdev.Driver_api.pd_request_irq (fun () ->
                     (* "processing" that never completes *)
                     let rec spin () =
                       t.Mal_nic.env.Driver_api.env_consume 100_000;
                       spin ()
                     in
                     spin ())
               with
               | Ok () -> ()
               | Error e -> failwith e);
              Mal_nic.reg_write t E1000_dev.Regs.ims 0xFF;
              t.Mal_nic.env.Driver_api.env_spawn ~name:"storm" (fun () ->
                  let rec storm () =
                    Mal_nic.reg_write t E1000_dev.Regs.ics E1000_dev.Regs.int_txdw;
                    t.Mal_nic.env.Driver_api.env_msleep 1;
                    storm ()
                  in
                  storm ());
              Ok ())
          ()
      in
      let s = start_mal w drv in
      ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      (* Meanwhile, the rest of the system must keep making progress. *)
      let progress = ref 0 in
      ignore
        (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"bystander"
           (fun () ->
              for _ = 1 to 100 do
                Cpu.consume w.k.Kernel.cpu ~label:"proc:bystander" 50_000;
                incr progress
              done)
         : Fiber.t);
      settle w 50;
      let delivered = Sud_obs.Metrics.get (Irq.metrics w.k.Kernel.irq).Irq.qm_delivered in
      { attack = "interrupt storm (driver never acks)";
        config = "SUD, MSI masking";
        contained = !progress = 100 && delivered < 50 && Safe_pci.msi_masks w.sp > 0;
        evidence =
          Printf.sprintf
            "bystander finished %d/100 slices; %d interrupts delivered; MSI masked %d time(s)"
            !progress delivered (Safe_pci.msi_masks w.sp) })

(* ---- 6. DMA-to-MSI forged interrupts ---- *)

let msi_dma_storm ~iommu =
  let w = make_world ~iommu_mode:iommu () in
  in_world w (fun () ->
      let vector = ref 0 in
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              (match t.Mal_nic.pdev.Driver_api.pd_request_irq (fun () -> ()) with
               | Ok () -> ()
               | Error e -> failwith e);
              (* Read our own MSI data register (reads are allowed) to
                 learn the vector, then aim RX DMA at the MSI window. *)
              (match t.Mal_nic.pdev.Driver_api.pd_find_capability Pci_cfg.msi_cap_id with
               | Some cap ->
                 vector := t.Mal_nic.pdev.Driver_api.pd_cfg_read ~off:(cap + 8) ~size:4
               | None -> ());
              Mal_nic.dma_write_via_rx t ~target:Bus.msi_window_base;
              Ok ())
          ()
      in
      let s = start_mal w drv in
      ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      settle w 1;
      (* Crafted frames: first 4 bytes encode the forged MSI message. *)
      let port = Net_medium.attach w.medium ~name:"crafted" ~rx:ignore in
      for _ = 1 to 100 do
        let f = Bytes.make 64 '\000' in
        Bytes.set_int32_le f 0 (Int32.of_int !vector);
        Net_medium.send w.medium port f
      done;
      settle w 20;
      let delivered = Sud_obs.Metrics.get (Irq.metrics w.k.Kernel.irq).Irq.qm_delivered in
      let cfg_name, contained, note =
        match iommu with
        | Iommu.Intel_vtd { interrupt_remapping = false } ->
          ( "VT-d without interrupt remapping (the paper's testbed)",
            false,
            Printf.sprintf
              "%d forged interrupts delivered; SUD logged livelock vulnerability %d time(s)"
              delivered (Safe_pci.livelock_warnings w.sp) )
        | Iommu.Intel_vtd { interrupt_remapping = true } ->
          ( "VT-d with interrupt remapping",
            Sud_obs.Metrics.get (Pci_topology.metrics w.k.Kernel.topo).Pci_topology.pm_ir_blocked
            > 0
            && delivered < 10,
            Printf.sprintf "%d forged messages blocked by the remap table, %d delivered"
              (Sud_obs.Metrics.get
                 (Pci_topology.metrics w.k.Kernel.topo).Pci_topology.pm_ir_blocked)
              delivered )
        | Iommu.Amd_vi ->
          ( "AMD IOMMU (MSI window unmapped on storm)",
            Safe_pci.ir_escalations w.sp > 0 && delivered < 10,
            Printf.sprintf "MSI window unmapped after %d deliveries; later writes fault (%d faults)"
              delivered
              (List.length (Iommu.faults w.k.Kernel.iommu)) )
      in
      { attack = "DMA write to MSI window (forged interrupts)";
        config = cfg_name;
        contained;
        evidence = note })

(* ---- 7. TOCTOU on shared packet memory ---- *)

let toctou ~defensive_copy =
  let w = make_world () in
  in_world w (fun () ->
      (* A stateful "deep inspection" firewall: it spends CPU examining the
         packet, then rules on the payload.  The inspection time is the
         TOCTOU window. *)
      let fw_time = ref 0 in
      Netstack.set_firewall w.k.Kernel.net
        (Some
           (fun skb ->
              fw_time := Engine.now w.eng;
              Cpu.consume w.k.Kernel.cpu ~label:"kernel:firewall" 5_000;
              if contains_substring skb.Skbuff.data "EVIL" then Netstack.Drop
              else Netstack.Accept));
      let mal_mac = Bytes.of_string "\x02\xBA\xD0\x00\x00\x01" in
      let region = ref None in
      (* A well-formed UDP frame to our own interface, payload "GOOD...". *)
      let benign = Bytes.make 87 '\000' in
      Bytes.blit mal_mac 0 benign 0 6;
      Bytes.set_uint16_be benign 12 0x0800;
      Bytes.set benign 14 '\001';                    (* proto udp *)
      Bytes.set_uint16_be benign 15 9999;            (* sport *)
      Bytes.set_uint16_be benign 17 4444;            (* dport *)
      Bytes.set_uint16_be benign 19 64;              (* len *)
      let payload = Bytes.make 64 '.' in
      Bytes.blit_string "GOOD-PACKET" 0 payload 0 11;
      Bytes.set_uint16_be benign 21 (Skbuff.checksum payload);
      Bytes.blit payload 0 benign 23 64;
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              region := Some t.Mal_nic.buf;
              t.Mal_nic.buf.Driver_api.dma_write ~off:0 benign;
              t.Mal_nic.cb.Driver_api.nc_rx ~queue:0
                ~addr:t.Mal_nic.buf.Driver_api.dma_addr ~len:(Bytes.length benign);
              Ok ())
          ()
      in
      let s = start_mal w ~defensive_copy drv in
      let dev = Driver_host.netdev s in
      let sock = Netstack.udp_bind w.k.Kernel.net dev ~port:4444 in
      (* The mutator waits for the firewall to have ruled, then swaps the
         payload in shared memory. *)
      ignore
        (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"mutator"
           (fun () ->
              let rec wait_for_fw () =
                if !fw_time = 0 then begin
                  ignore (Fiber.sleep w.eng 200 : Fiber.wake);
                  wait_for_fw ()
                end
              in
              wait_for_fw ();
              match !region with
              | Some r ->
                let evil = Bytes.copy benign in
                Bytes.blit_string "EVIL-PAYLOAD" 0 evil 23 12;
                r.Driver_api.dma_write ~off:0 evil
              | None -> ())
         : Fiber.t);
      ignore (Netstack.ifconfig_up w.k.Kernel.net dev : (unit, string) result);
      settle w 10;
      let delivered = Netstack.udp_pending sock in
      let got_evil =
        delivered > 0
        &&
        match Netstack.udp_recv w.k.Kernel.net sock with
        | Some (data, _) -> contains_substring data "EVIL"
        | None -> false
      in
      { attack = "TOCTOU rewrite of shared packet memory";
        config =
          (if defensive_copy then "defensive copy fused with checksum (default)"
           else "zero-copy delivery (vulnerable configuration)");
        contained = (not got_evil) && delivered > 0;
        evidence =
          Printf.sprintf
            "firewall approved \"GOOD-PACKET\"; socket received %s"
            (if got_evil then "\"EVIL-PAYLOAD\" — verdict bypassed"
             else if delivered > 0 then "the inspected bytes"
             else "nothing (frame lost)") })

(* ---- 8. hang ---- *)

let driver_hang () =
  let w = make_world () in
  in_world w (fun () ->
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              (* Never reply: sleep forever inside the open upcall. *)
              let rec forever () =
                t.Mal_nic.env.Driver_api.env_msleep 1_000;
                forever ()
              in
              forever ())
          ()
      in
      let s = start_mal w drv in
      let t0 = Engine.now w.eng in
      let r = Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) in
      let elapsed_ms = (Engine.now w.eng - t0) / 1_000_000 in
      let hung_detected = match r with Error _ -> true | Ok () -> false in
      { attack = "unresponsive driver (hang on synchronous upcall)";
        config = "SUD, interruptible upcalls";
        contained = hung_detected && elapsed_ms < 1_000;
        evidence =
          Printf.sprintf "ifconfig returned %s after %d ms (not wedged forever)"
            (match r with Error e -> Printf.sprintf "%S" e | Ok () -> "Ok?!")
            elapsed_ms })

(* ---- 9. config space ---- *)

let config_space () =
  let w = make_world () in
  in_world w (fun () ->
      let results = ref [] in
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              let try_write name off size v =
                let r = t.Mal_nic.pdev.Driver_api.pd_cfg_write ~off ~size v in
                results := (name, r) :: !results
              in
              (* Remap BAR0 over kernel RAM. *)
              try_write "BAR0 rewrite" Pci_cfg.bar0 4 0x1000;
              (* Retarget our MSI to a kernel-owned vector. *)
              (match t.Mal_nic.pdev.Driver_api.pd_find_capability Pci_cfg.msi_cap_id with
               | Some cap -> try_write "MSI address rewrite" (cap + 4) 4 0xFEE00F00
               | None -> ());
              (* Re-enable legacy INTx by clearing the disable bit. *)
              try_write "INTx enable" Pci_cfg.command 2 Pci_cfg.cmd_mem_enable;
              Ok ())
          ()
      in
      let s = start_mal w drv in
      ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      settle w 5;
      let bar_blocked =
        List.exists (fun (n, r) -> n = "BAR0 rewrite" && Result.is_error r) !results
      in
      let msi_blocked =
        List.exists (fun (n, r) -> n = "MSI address rewrite" && Result.is_error r) !results
      in
      let intx_still_disabled =
        Pci_topology.cfg_read w.k.Kernel.topo w.bdf ~off:Pci_cfg.command ~size:2
        land Pci_cfg.cmd_intx_disable <> 0
      in
      { attack = "PCI config space manipulation";
        config = "SUD filtered config access";
        contained = bar_blocked && msi_blocked && intx_still_disabled;
        evidence =
          Printf.sprintf
            "BAR rewrite %s; MSI rewrite %s; INTx still disabled: %b; %d denials logged"
            (if bar_blocked then "denied" else "ALLOWED")
            (if msi_blocked then "denied" else "ALLOWED")
            intx_still_disabled (Safe_pci.cfg_denials w.sp) })

(* ---- 10. allocation bomb ---- *)

let allocation_bomb () =
  let w = make_world () in
  in_world w (fun () ->
      let allocated = ref 0 in
      let stopped_by_limit = ref false in
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              let rec bomb () =
                match t.Mal_nic.pdev.Driver_api.pd_alloc_dma ~bytes:65536 () with
                | Ok _ ->
                  allocated := !allocated + 65536;
                  bomb ()
                | Error _ ->
                  stopped_by_limit := true;
                  Ok ()
              in
              bomb ())
          ()
      in
      let s = start_mal w drv in
      Driver_host.set_memory_limit s ~bytes:(4 * 1024 * 1024);
      ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      settle w 20;
      { attack = "DMA allocation bomb";
        config = "setrlimit 4 MiB on the driver process";
        contained = !stopped_by_limit && !allocated <= 5 * 1024 * 1024;
        evidence =
          Printf.sprintf "driver allocated %d KiB before hitting RLIMIT" (!allocated / 1024) })

(* ---- 11. kill and restart (supervised) ---- *)

(* Fast supervision policy so scenarios converge in a few simulated ms. *)
let fast_policy =
  { Supervisor.default_policy with
    Supervisor.tick_ns = 1_000_000;
    hang_timeout_ns = 10_000_000;
    backoff_initial_ns = 500_000;
    backoff_max_ns = 10_000_000 }

let wait_recovered w sv =
  let rec loop budget =
    if budget > 0 && (Supervisor.stats sv).Supervisor.st_restarts = 0 then begin
      settle w 2;
      loop (budget - 1)
    end
  in
  loop 200

(* One probe frame through the (possibly fresh) driver; true if it
   reached the wire. *)
let traffic_flows w dev ~port =
  let sock = Netstack.udp_bind w.k.Kernel.net dev ~port in
  let before = List.length !(w.snoop) in
  ignore
    (Netstack.udp_sendto w.k.Kernel.net sock ~dst:Skbuff.Mac.broadcast ~dst_port:port
       (Bytes.of_string "recovered")
     : [ `Sent | `Dropped ]);
  settle w 5;
  Netstack.udp_close w.k.Kernel.net sock;
  List.length !(w.snoop) > before

let supervised_evidence sv ~extra =
  let st = Supervisor.stats sv in
  Printf.sprintf "detected %S in %d us; traffic restored %d us after detection (restart #%d)%s"
    (Option.value ~default:"?" st.Supervisor.st_last_reason)
    (st.Supervisor.st_last_detect_latency_ns / 1_000)
    (st.Supervisor.st_last_recovery_ns / 1_000)
    st.Supervisor.st_restarts extra

let kill_and_restart () =
  let w = make_world () in
  in_world w (fun () ->
      let addr = plant_secret w in
      let mal =
        Mal_nic.driver
          ~on_open:(fun t ->
              Mal_nic.dma_read_via_tx t ~target:addr ~len:16;
              Ok ())
          ()
      in
      (* Generation 0 is the malicious driver; the supervisor's restart
         hands the device to the honest one. *)
      let factory ~attempt = if attempt = 0 then mal else E1000.driver in
      match Supervisor.start w.k w.sp ~policy:fast_policy ~name:"eth0" ~bdf:w.bdf factory with
      | Error e ->
        { attack = "kill -9 and restart";
          config = "SUD driver supervisor";
          contained = false;
          evidence = "supervised start failed: " ^ e }
      | Ok sv ->
        let old_proc = Supervisor.proc sv in
        let dev = Supervisor.netdev sv in
        ignore (Netstack.ifconfig_up w.k.Kernel.net dev : (unit, string) result);
        (* The malicious open fires DMA at the secret; the watchdog sees
           the IOMMU fault, kills the driver and restarts autonomously. *)
        wait_recovered w sv;
        settle w 5;
        let st = Supervisor.stats sv in
        let works = traffic_flows w dev ~port:5353 in
        let old_dead =
          match old_proc with Some p -> not (Process.is_alive p) | None -> true
        in
        { attack = "kill -9 and restart";
          config = "SUD driver supervisor (autonomous)";
          contained =
            st.Supervisor.st_restarts >= 1
            && Supervisor.state sv = Supervisor.Running
            && works && old_dead
            && not (leaked w);
          evidence =
            supervised_evidence sv
              ~extra:
                (Printf.sprintf "; malicious process dead: %b; traffic flows: %b; secret leaked: %b"
                   old_dead works (leaked w)) })

(* ---- 11b. hang, detected by the heartbeat, recovered ---- *)

let driver_hang_recovery () =
  let w = make_world () in
  in_world w (fun () ->
      match
        Supervisor.start w.k w.sp ~policy:fast_policy ~name:"eth0" ~bdf:w.bdf
          (fun ~attempt:_ -> E1000.driver)
      with
      | Error e ->
        { attack = "driver hang, supervised recovery";
          config = "SUD driver supervisor, heartbeat";
          contained = false;
          evidence = "supervised start failed: " ^ e }
      | Ok sv ->
        let dev = Supervisor.netdev sv in
        ignore (Netstack.ifconfig_up w.k.Kernel.net dev : (unit, string) result);
        settle w 3;
        (* Wedge the driver's main upcall loop: no crash, no fault — only
           the heartbeat ping can notice. *)
        let applied = Fault_inject.inject ~sv Fault_inject.Hang in
        wait_recovered w sv;
        settle w 5;
        let st = Supervisor.stats sv in
        let works = traffic_flows w dev ~port:5354 in
        { attack = "driver hang, supervised recovery";
          config = "SUD driver supervisor, heartbeat";
          contained =
            applied && st.Supervisor.st_restarts >= 1
            && Supervisor.state sv = Supervisor.Running
            && works;
          evidence =
            supervised_evidence sv
              ~extra:(Printf.sprintf "; traffic flows after recovery: %b" works) })

(* ---- 11c. crash loop exhausts the restart budget ---- *)

let crash_loop_quarantine () =
  let qr = Fault_inject.crash_loop ~max_restarts:3 () in
  { attack = "crash-looping driver";
    config = "SUD driver supervisor, restart budget 3/window";
    contained =
      qr.Fault_inject.qr_quarantined && qr.Fault_inject.qr_netdev_removed
      && qr.Fault_inject.qr_sysfs_state = "quarantined";
    evidence =
      Printf.sprintf
        "%d restarts, then quarantined: %b; netdev removed: %b; sysfs sud_state=%S"
        qr.Fault_inject.qr_restarts qr.Fault_inject.qr_quarantined
        qr.Fault_inject.qr_netdev_removed qr.Fault_inject.qr_sysfs_state }

(* ---- 12. IO-port scanning from a PIO driver ---- *)

let io_port_scan () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let ne2k = Ne2k_dev.create eng ~mac:(Bytes.of_string "\x02\x00\x00\x00\x00\x07") ~medium () in
  let bdf = Kernel.attach_pci k (Ne2k_dev.device ne2k) in
  (* A victim device on other ports the attacker has no grant for. *)
  Ioport.register k.Kernel.ioports ~base:0x60 ~len:4
    ~read:(fun ~off:_ ~size:_ -> 0x5A)
    ~write:(fun ~off:_ ~size:_ _ -> ());
  let result = ref None in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"scenario" (fun () ->
         let sp = Safe_pci.init k in
         Safe_pci.register_device sp bdf;
         Safe_pci.set_owner sp bdf ~uid:1000;
         let proc = Process.spawn k.Kernel.procs ~name:"mal-ne2k" ~uid:1000 in
         let grant =
           match Safe_pci.open_device sp bdf ~proc with
           | Ok g -> g
           | Error e -> failwith e
         in
         (match Safe_pci.enable_device grant with Ok () -> () | Error e -> failwith e);
         let pio =
           match Safe_pci.claim_io grant ~bar:0 with Ok p -> p | Error e -> failwith e
         in
         (* Own ports work... *)
         let own = pio.Driver_api.pio_read ~off:0 ~size:1 in
         ignore own;
         (* ...but the IOPB grants only the device's BAR range, so reaching
            port 0x60 through it is out of range by construction, and the
            raw port space rejects the process's IOPB. *)
         let gp =
           match
             Ioport.read k.Kernel.ioports ~iopb:(Ioport.Iopb.none ()) ~port:0x60 ~size:1
           with
           | _ -> false
           | exception Ioport.General_protection _ -> true
         in
         result :=
           Some
             { attack = "IO-port scan beyond the granted BAR";
               config = "SUD IO-permission bitmap";
               contained = gp;
               evidence =
                 (if gp then "access to port 0x60 raised #GP; only the NIC's own ports answer"
                  else "foreign port readable — IOPB breach") })
     : Fiber.t);
  Engine.run ~max_time:1_000_000_000 eng;
  Option.get !result

(* ---- 13. downcall flood ---- *)

let downcall_flood () =
  let w = make_world () in
  in_world w (fun () ->
      let drv =
        Mal_nic.driver
          ~on_open:(fun t ->
              t.Mal_nic.env.Driver_api.env_spawn ~name:"flood" (fun () ->
                  (* Saturate the u2k ring forever. *)
                  let rec flood () =
                    for _ = 1 to 64 do
                      t.Mal_nic.cb.Driver_api.nc_tx_done ~queue:0
                    done;
                    t.Mal_nic.env.Driver_api.env_msleep 1;
                    flood ()
                  in
                  flood ());
              Ok ())
          ()
      in
      let s = start_mal w drv in
      ignore (Netstack.ifconfig_up w.k.Kernel.net (Driver_host.netdev s) : (unit, string) result);
      (* Bystander work must still complete: the flood costs kernel CPU on
         one schedulable fiber, not the machine. *)
      let progress = ref 0 in
      ignore
        (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"bystander"
           (fun () ->
              for _ = 1 to 100 do
                Cpu.consume w.k.Kernel.cpu ~label:"proc:bystander" 50_000;
                incr progress
              done)
         : Fiber.t);
      settle w 50;
      let downcalls =
        Sud_obs.Metrics.get (Uchan.metrics (Driver_host.chan s)).Uchan.um_down
      in
      { attack = "downcall flood (uchan spam)";
        config = "SUD uchan + schedulable kernel worker";
        contained = !progress = 100 && downcalls > 1000;
        evidence =
          Printf.sprintf "driver sent %d downcalls; bystander finished %d/100 slices"
            downcalls !progress })

let all () =
  [ dma_read_exfiltration ~sud:false;
    dma_read_exfiltration ~sud:true;
    dma_write_corruption ();
    peer_to_peer ~acs:false;
    peer_to_peer ~acs:true;
    source_spoofing ~validation:false;
    source_spoofing ~validation:true;
    interrupt_storm ();
    msi_dma_storm ~iommu:(Iommu.Intel_vtd { interrupt_remapping = false });
    msi_dma_storm ~iommu:(Iommu.Intel_vtd { interrupt_remapping = true });
    msi_dma_storm ~iommu:Iommu.Amd_vi;
    toctou ~defensive_copy:true;
    toctou ~defensive_copy:false;
    driver_hang ();
    config_space ();
    allocation_bomb ();
    io_port_scan ();
    downcall_flood ();
    kill_and_restart ();
    driver_hang_recovery ();
    crash_loop_quarantine () ]
