(** Live Byzantine protocol fuzzer for the uchan interface.

    A seeded mutation engine sits between a {e real} driver (honest
    E1000 under supervision, live UDP traffic) and the kernel worker,
    garbling marshalled u2k slots in flight, forging slots the driver
    never sent and hammering the notification doorbell.  Each mutation
    class maps onto a specific detector, and {!campaign} asserts that
    every class was detected at least once while the soak containment
    invariants (kernel secret intact, grant revoked on death, no stale
    IOTLB translation) held across all the driver deaths it provoked. *)

type mutation =
  | Kind_swap
      (** rewrite the kind to a wild opcode → [Unknown_kind] *)
  | Seq_skew
      (** replayed or invented sequence number →
          [Nonmonotone_seq] / [Seq_from_future] *)
  | Stale_epoch
      (** stamp a dead generation's epoch → [Bad_epoch] *)
  | Len_bomb
      (** length/count field past the slot → defensive unmarshal,
          [um_malformed] *)
  | Completion_forge
      (** reply to an RPC the kernel never issued →
          [Forged_completion] *)
  | Notify_flood
      (** doorbell storm with nothing behind the kicks → quota
          notification-bucket overflow *)

val all_mutations : mutation list
val mutation_name : mutation -> string

type fuzz_report = {
  fz_seed : int64;
  fz_planned : int;
  fz_applied : int;
  fz_skipped : int;
  fz_by_class : (string * int) list;   (** applications per class *)
  fz_detected : (string * int) list;   (** detector hits per class *)
  fz_detections : int;                 (** supervisor fault detections *)
  fz_restarts : int;
  fz_deaths : int;
  fz_state : Supervisor.state;         (** must be [Running] *)
  fz_violations : string list;         (** must be [[]] *)
  fz_sched : Fault_inject.sched_summary;
}

val campaign :
  ?sched:Sched.spec ->
  ?seed:int64 ->
  ?n_mutations:int ->
  ?storm_kicks:int ->
  unit ->
  fuzz_report
(** Run a supervised honest E1000 under continuous burst traffic while
    applying [n_mutations] (default 600) mutations round-robin across
    every class, waiting for the supervisor to return to [Running]
    between lethal ones.  [storm_kicks] (default 6000, comfortably past
    the default 4096-token bucket) sizes each [Notify_flood].
    [fz_violations] collects both containment-invariant failures and
    coverage failures (a class never applied or never detected). *)

type quarantine_report = {
  pq_restarts : int;
  pq_quarantined : bool;               (** must be [true] *)
  pq_violations : string list;         (** must be [[]] *)
}

val quarantine_campaign : ?max_restarts:int -> unit -> quarantine_report
(** Make every fresh generation speak out of protocol immediately: the
    supervisor must burn its restart budget (default 3) on protocol
    violations alone and quarantine the device, with the containment
    invariants holding at every death. *)
