(* Seeded deterministic fault injection against a supervised driver, and
   the crash-loop soak harness that exercises the supervisor's
   detect → contain → recover loop hundreds of times under live traffic
   while checking the containment invariants at every driver death. *)

type fault = Crash | Hang | Corrupt_reply | Drop_reply | Dma_violation | Corrupt_batch

let all_faults = [ Crash; Hang; Corrupt_reply; Drop_reply; Dma_violation; Corrupt_batch ]

let fault_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Corrupt_reply -> "corrupt_reply"
  | Drop_reply -> "drop_reply"
  | Dma_violation -> "dma_violation"
  | Corrupt_batch -> "corrupt_batch"

(* A corrupt batch frame is contained in place — the kernel drops that one
   frame and delivers its siblings; nothing escalates to a restart, so
   there is no recovery latency to measure for it. *)
let lethal = function
  | Crash | Hang | Corrupt_reply | Drop_reply | Dma_violation -> true
  | Corrupt_batch -> false

type injection = { at_ns : int; fault : fault }
type plan = injection list

let random_plan ~seed ~duration_ns ~n ?(faults = all_faults) () =
  if n < 0 || duration_ns <= 0 then invalid_arg "Fault_inject.random_plan";
  let rng = Rng.create ~seed in
  let arr = Array.of_list faults in
  List.init n (fun _ ->
      { at_ns = Rng.int rng duration_ns; fault = arr.(Rng.int rng (Array.length arr)) })
  |> List.sort (fun a b -> compare a.at_ns b.at_ns)

type injector_stats = {
  mutable inj_applied : int;
  mutable inj_skipped : int;
  inj_by_class : (string, int) Hashtbl.t;
}

let new_injector_stats () =
  { inj_applied = 0; inj_skipped = 0; inj_by_class = Hashtbl.create 8 }

let by_class st =
  List.map
    (fun f -> (fault_name f, Option.value ~default:0 (Hashtbl.find_opt st.inj_by_class (fault_name f))))
    all_faults

(* Apply one fault to the supervisor's current driver generation.
   Injections only make sense against a Running driver; while the
   supervisor is mid-recovery there is nothing to sabotage. *)
let inject ~sv ?dma_violate fault =
  if Supervisor.state sv <> Supervisor.Running then false
  else
    match fault with
    | Crash ->
      (match Supervisor.proc sv with
       | Some p when Process.is_alive p ->
         Process.kill p;
         true
       | Some _ | None -> false)
    | Hang ->
      (match Supervisor.chan sv with
       | Some chan when not (Uchan.is_closed chan) ->
         Uchan.wedge chan;
         true
       | Some _ | None -> false)
    | Corrupt_reply ->
      (match Supervisor.chan sv with
       | Some chan when not (Uchan.is_closed chan) ->
         Uchan.inject_corrupt_replies chan 1;
         true
       | Some _ | None -> false)
    | Drop_reply ->
      (match Supervisor.chan sv with
       | Some chan when not (Uchan.is_closed chan) ->
         Uchan.inject_drop_replies chan 1;
         true
       | Some _ | None -> false)
    | Dma_violation ->
      (match dma_violate with
       | Some f ->
         f ();
         true
       | None -> false)
    | Corrupt_batch ->
      (* Garble one frame inside the next multi-frame downcall batch the
         driver flushes.  The kernel must drop exactly that frame
         (um_malformed_frames ticks) and deliver its siblings —
         containment without a restart. *)
      (match Supervisor.chan sv with
       | Some chan when not (Uchan.is_closed chan) ->
         Uchan.inject_corrupt_batch_frames chan 1;
         true
       | Some _ | None -> false)

(* Walk a plan in order, sleeping to each injection instant (relative to
   the fiber's start).  After injecting, wait for the supervisor to come
   back to Running before the next one so every planned fault lands on a
   live driver (injections against a recovering driver are no-ops). *)
let run_plan k ~sv ?dma_violate ?(stats = new_injector_stats ()) plan =
  let eng = k.Kernel.eng in
  let t0 = Engine.now eng in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"fault-injector"
       (fun () ->
          List.iter
            (fun { at_ns; fault } ->
               let dt = t0 + at_ns - Engine.now eng in
               if dt > 0 then ignore (Fiber.sleep eng dt : Fiber.wake);
               (* "Running" alone is not enough: between a driver death
                  and the supervisor's next tick the state still reads
                  Running while the target is already gone, and a fault
                  landing in that window would find nothing to sabotage.
                  Wait for a generation that is actually alive. *)
               let target_live () =
                 match Supervisor.state sv with
                 | Supervisor.Running ->
                   (match Supervisor.proc sv with
                    | Some p -> Process.is_alive p
                    | None -> false)
                 | Supervisor.Recovering -> false
                 | _ -> true (* quarantined: no recovery coming; let inject skip *)
               in
               let rec wait_running budget =
                 if budget > 0 && not (target_live ()) then begin
                   ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
                   wait_running (budget - 1)
                 end
               in
               wait_running 1_000;
               if inject ~sv ?dma_violate fault then begin
                 stats.inj_applied <- stats.inj_applied + 1;
                 let n = fault_name fault in
                 Hashtbl.replace stats.inj_by_class n
                   (1 + Option.value ~default:0 (Hashtbl.find_opt stats.inj_by_class n))
               end
               else stats.inj_skipped <- stats.inj_skipped + 1)
            plan)
     : Fiber.t);
  stats

(* ---- the soak world ---- *)

type world = {
  eng : Engine.t;
  k : Kernel.t;
  sp : Safe_pci.t;
  medium : Net_medium.t;
  nic : E1000_dev.t;
  bdf : Bus.bdf;
  wire : int ref;          (* frames observed on the medium *)
}

let make_world () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let wire = ref 0 in
  ignore (Net_medium.attach medium ~name:"snoop" ~rx:(fun _ -> incr wire) : Net_medium.port);
  let nic = E1000_dev.create eng ~mac:(Bytes.of_string "\x02\x00\x00\x00\x00\x01") ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  let sp = Safe_pci.init k in
  { eng; k; sp; medium; nic; bdf; wire }

let in_world ?(max_ms = 30_000) w main =
  let result = ref None in
  ignore
    (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"soak" (fun () ->
         result := Some (main ()))
     : Fiber.t);
  Engine.run ~max_time:(Engine.now w.eng + (max_ms * 1_000_000)) w.eng;
  match !result with Some r -> r | None -> failwith "soak did not complete"

let secret = "SOAK-SECRET-0xFEEDFACE"

(* Fast supervision policy so a multi-hundred-fault soak converges in
   bounded simulated time. *)
let soak_policy ~max_restarts =
  { Supervisor.default_policy with
    Supervisor.tick_ns = 1_000_000;
    hang_timeout_ns = 10_000_000;
    backoff_initial_ns = 500_000;
    backoff_max_ns = 10_000_000;
    max_restarts;
    restart_window_ns = 2_000_000_000;
    backlog_limit = 128;
    (* The soak and the fuzzer measure the *cold* recovery path — its
       backoff, its backlog window, its per-class outage baselines
       (BENCH_5/7).  Warm standby is exercised by its own harnesses
       ([warm_policy], [upgrade_soak], sud-bench/8). *)
    standby = false }

(* The same aggressive watchdog with the warm standby on: lethal faults
   swap to the pre-forked generation instead of cold-starting. *)
let warm_policy ~max_restarts = { (soak_policy ~max_restarts) with Supervisor.standby = true }

(* Containment invariants, checked at every driver death.  The snapshot
   is taken at Fault_detected (the dying generation is still current);
   the checks run at Driver_killed (process dead, grant revoked, device
   reset). *)
type invariant_ctx = {
  iv_k : Kernel.t;
  iv_bdf : Bus.bdf;
  iv_secret_addr : int;
  mutable iv_snapshot : (Safe_pci.grant * int list) option;  (* grant, mapped iovas *)
  mutable iv_violations : string list;
  mutable iv_deaths : int;
}

let violate ctx fmt =
  Printf.ksprintf (fun s -> ctx.iv_violations <- s :: ctx.iv_violations) fmt

let invariant_violations ctx = List.rev ctx.iv_violations
let invariant_deaths ctx = ctx.iv_deaths

(* Class-independent: the same containment contract holds whether the
   supervised device is a NIC or an NVMe. *)
let install_invariants_for ~k ~bdf sv ~secret_addr =
  let ctx =
    { iv_k = k;
      iv_bdf = bdf;
      iv_secret_addr = secret_addr;
      iv_snapshot = None;
      iv_violations = [];
      iv_deaths = 0 }
  in
  Supervisor.on_event sv (function
      | Supervisor.Fault_detected _ ->
        (match Supervisor.grant sv with
         | Some g ->
           let iovas =
             List.concat_map
               (fun (iova, _phys, len, _w) ->
                  List.init (len / Bus.page_size) (fun i -> iova + (i * Bus.page_size)))
               (Safe_pci.iommu_mappings g)
           in
           ctx.iv_snapshot <- Some (g, iovas)
         | None -> ctx.iv_snapshot <- None)
      | Supervisor.Driver_killed ->
        ctx.iv_deaths <- ctx.iv_deaths + 1;
        let iommu = k.Kernel.iommu in
        (* Kernel memory is untouched by anything the dying driver did. *)
        let now =
          Phys_mem.read k.Kernel.mem ~addr:ctx.iv_secret_addr ~len:(String.length secret)
        in
        if Bytes.to_string now <> secret then
          violate ctx "death %d: kernel secret page corrupted" ctx.iv_deaths;
        (* The dead generation's grant is revoked and its IOMMU domain
           detached. *)
        (match ctx.iv_snapshot with
         | None -> violate ctx "death %d: no grant snapshot at detection time" ctx.iv_deaths
         | Some (g, iovas) ->
           if Safe_pci.grant_alive g then
             violate ctx "death %d: grant still alive after driver death" ctx.iv_deaths;
           if Iommu.domain_of iommu ~source:bdf <> None then
             violate ctx "death %d: IOMMU domain still attached" ctx.iv_deaths;
           (* No stale IOTLB entry: probing any previously-mapped iova must
              not answer from the cache.  (With the domain detached the
              probe reports passthrough [`Bypass]; a [`Hit] here would be
              the stale-translation containment hole.) *)
           List.iter
             (fun iova ->
                match Iommu.translate_info iommu ~source:bdf ~addr:iova ~dir:Bus.Dma_read with
                | _, `Hit ->
                  violate ctx "death %d: stale IOTLB entry for iova 0x%x" ctx.iv_deaths iova
                | _, (`Walk | `Bypass) -> ())
             iovas;
           ctx.iv_snapshot <- None)
      | Supervisor.Driver_restarted _ | Supervisor.Driver_quarantined _ -> ());
  ctx

let install_invariants w sv ~secret_addr =
  install_invariants_for ~k:w.k ~bdf:w.bdf sv ~secret_addr

(* Continuous netperf-style UDP traffic through the supervised netdev. *)
type traffic = {
  mutable tr_offered : int;
  mutable tr_sent : int;
  mutable tr_dropped : int;
  mutable tr_stop : bool;
}

let start_traffic ?(burst = 1) w dev ~gap_ns =
  let tr = { tr_offered = 0; tr_sent = 0; tr_dropped = 0; tr_stop = false } in
  let sock = Netstack.udp_bind w.k.Kernel.net dev ~port:7000 in
  ignore
    (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"traffic" (fun () ->
         let payload = Bytes.make 128 'x' in
         let send () =
           tr.tr_offered <- tr.tr_offered + 1;
           match
             Netstack.udp_sendto w.k.Kernel.net sock ~dst:Skbuff.Mac.broadcast
               ~dst_port:7000 payload
           with
           | `Sent -> tr.tr_sent <- tr.tr_sent + 1
           | `Dropped -> tr.tr_dropped <- tr.tr_dropped + 1
         in
         let rec loop () =
           if not tr.tr_stop then begin
             for _ = 1 to burst do send () done;
             ignore (Fiber.sleep w.eng gap_ns : Fiber.wake);
             loop ()
           end
         in
         loop ())
     : Fiber.t);
  tr

let dma_violate w () =
  (* Device-level DMA to an address the driver never mapped: the IOMMU
     must fault and attribute it to this device's BDF. *)
  ignore (Device.dma_read (E1000_dev.device w.nic) ~addr:0x6000 ~len:64 : (bytes, Bus.fault) result)

let honest_factory ~attempt:_ = E1000.driver

(* ---- seed plumbing and schedule capture ---- *)

(* Every harness default seed below derives from this one root, so a
   single printed value reproduces the whole campaign; callers with
   their own root (bench, sud-check) pass explicit ?seed instead. *)
let default_root = 0x5D_D01_7E57L

let dseed tag = Rng.derive ~root:default_root tag

type sched_summary = {
  ss_policy : string;
  ss_points : int;
  ss_decisions : Sched.decision list;
  ss_steps : int;
  ss_trace_hash : int64;
  ss_metrics_hash : int64;
  ss_divergence : string option;
  ss_dump : string option;
}

(* Close out a (possibly recorded) run: fingerprint it, and if the run
   violated an invariant, dump a replayable schedule file under traces/
   so the failure is a repro, not an anecdote. *)
let finish_sched ~scenario ~seed ~sched ~eng rec_ ~violations =
  let spec = Option.value ~default:Sched.Fifo sched in
  let points, divergence =
    match rec_ with
    | Some r -> (r.Sched.rec_points, r.Sched.rec_divergence)
    | None -> (0, None)
  in
  let r =
    match rec_ with
    | Some r -> r
    | None -> { Sched.rec_rev = []; rec_points = 0; rec_divergence = None }
  in
  let steps = Engine.steps eng in
  let trace_hash = Engine.trace_hash eng in
  let metrics_hash = Sud_obs.Metrics.snapshot_hash () in
  let dump =
    if violations = [] then None
    else begin
      (try if not (Sys.file_exists "traces") then Sys.mkdir "traces" 0o755
       with Sys_error _ -> ());
      let path = Printf.sprintf "traces/%s_0x%Lx.sched.jsonl" scenario seed in
      match
        Sched.save ~path
          (Sched.file_of ~scenario ~seed ~spec ~trace_hash ~metrics_hash ~steps r)
      with
      | () -> Some path
      | exception Sys_error _ -> None
    end
  in
  { ss_policy = Sched.spec_label spec;
    ss_points = points;
    ss_decisions = Sched.decisions r;
    ss_steps = steps;
    ss_trace_hash = trace_hash;
    ss_metrics_hash = metrics_hash;
    ss_divergence = divergence;
    ss_dump = dump }

(* Placeholder filled in by [finish_sched] once the engine has drained. *)
let pending_sched =
  { ss_policy = "fifo";
    ss_points = 0;
    ss_decisions = [];
    ss_steps = 0;
    ss_trace_hash = 0L;
    ss_metrics_hash = 0L;
    ss_divergence = None;
    ss_dump = None }

(* ---- the soak itself ---- *)

type soak_report = {
  sr_seed : int64;
  sr_planned : int;
  sr_applied : int;
  sr_skipped : int;
  sr_by_class : (string * int) list;
  sr_detections : int;
  sr_restarts : int;
  sr_deaths : int;
  sr_state : Supervisor.state;
  sr_offered : int;
  sr_sent : int;
  sr_dropped : int;
  sr_wire_frames : int;
  sr_backlog : Netdev.backlog_stats;
  sr_max_outage_ns : int;
  sr_malformed : int;
  sr_violations : string list;
  sr_sched : sched_summary;
}

(* An outage longer than this (simulated time) means recovery is not
   "bounded" in any useful sense: with a 10 ms hang timeout, a 1 ms tick
   and sub-ms backoff, healthy recoveries complete well under it. *)
let outage_bound_ns = 500_000_000

let soak ?sched ?seed ?(n_faults = 200) ?(duration_ms = 4_000) ?plan () =
  let seed = match seed with Some s -> s | None -> dseed "soak" in
  let w = make_world () in
  let rec_ = Option.map (fun s -> Sched.install w.eng s) sched in
  let report =
    in_world w (fun () ->
      let secret_addr = Phys_mem.alloc_pages w.k.Kernel.mem ~pages:1 in
      Phys_mem.write w.k.Kernel.mem ~addr:secret_addr (Bytes.of_string secret);
      let sv =
        match
          Supervisor.start w.k w.sp ~policy:(soak_policy ~max_restarts:max_int) ~bdf:w.bdf
            honest_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("soak: supervised start failed: " ^ e)
      in
      let ctx = install_invariants w sv ~secret_addr in
      let max_outage = ref 0 in
      (* um_malformed lives on the uchan, and every driver generation gets a
         fresh uchan: fold the dying generation's count in at detection time
         (its chan is still current), and the final generation's at the end. *)
      let malformed = ref 0 in
      let chan_malformed () =
        match Supervisor.chan sv with
        | Some c when not (Uchan.is_closed c) ->
          let um = Uchan.metrics c in
          Sud_obs.Metrics.get um.Uchan.um_malformed
          + Sud_obs.Metrics.get um.Uchan.um_malformed_frames
        | Some _ | None -> 0
      in
      Supervisor.on_event sv (function
          | Supervisor.Driver_restarted { outage_ns; _ } ->
            if outage_ns > !max_outage then max_outage := outage_ns;
            if outage_ns > outage_bound_ns then
              violate ctx "recovery outage %d ms exceeds bound" (outage_ns / 1_000_000)
          | Supervisor.Fault_detected _ -> malformed := !malformed + chan_malformed ()
          | _ -> ());
      let dev = Supervisor.netdev sv in
      (match Netstack.ifconfig_up w.k.Kernel.net dev with
       | Ok () -> ()
       | Error e -> failwith ("soak: ifconfig up: " ^ e));
      (* Bursts of 4 at the same average rate as before: back-to-back sends
         are what makes the driver's tx_free downcalls coalesce into
         multi-frame batch slots, so Corrupt_batch injections have an
         actual batch to garble. *)
      let tr = start_traffic ~burst:4 w dev ~gap_ns:800_000 in
      let plan =
        match plan with
        | Some p -> p
        | None -> random_plan ~seed ~duration_ns:(duration_ms * 1_000_000) ~n:n_faults ()
      in
      let stats = run_plan w.k ~sv ~dma_violate:(dma_violate w) plan in
      (* Let the plan run out, then let the last recovery settle. *)
      ignore (Fiber.sleep w.eng ((duration_ms + 200) * 1_000_000) : Fiber.wake);
      let rec drain budget =
        if budget > 0 && Supervisor.state sv = Supervisor.Recovering then begin
          ignore (Fiber.sleep w.eng 10_000_000 : Fiber.wake);
          drain (budget - 1)
        end
      in
      drain 200;
      tr.tr_stop <- true;
      ignore (Fiber.sleep w.eng 10_000_000 : Fiber.wake);
      (* Post-soak invariants. *)
      let st = Supervisor.stats sv in
      if Supervisor.state sv <> Supervisor.Running then
        violate ctx "soak ended with supervisor %s, expected Running"
          (match Supervisor.state sv with
           | Supervisor.Running -> "running"
           | Supervisor.Recovering -> "recovering"
           | Supervisor.Quarantined -> "quarantined"
           | Supervisor.Stopped -> "stopped");
      let bl =
        let nm = Netdev.metrics dev in
        { Netdev.bl_offered = Sud_obs.Metrics.get nm.Netdev.nm_bl_offered;
          bl_queued = Sud_obs.Metrics.gauge_value nm.Netdev.nm_bl_queued;
          bl_dropped = Sud_obs.Metrics.get nm.Netdev.nm_bl_dropped;
          bl_replayed = Sud_obs.Metrics.get nm.Netdev.nm_bl_replayed }
      in
      if bl.Netdev.bl_offered <> bl.Netdev.bl_queued + bl.Netdev.bl_dropped + bl.Netdev.bl_replayed
      then
        violate ctx "backlog accounting broken: offered %d <> queued %d + dropped %d + replayed %d"
          bl.Netdev.bl_offered bl.Netdev.bl_queued bl.Netdev.bl_dropped bl.Netdev.bl_replayed;
      if ctx.iv_deaths <> st.Supervisor.st_detections then
        violate ctx "detections %d but deaths %d" st.Supervisor.st_detections ctx.iv_deaths;
      let malformed_total = !malformed + chan_malformed () in
      let applied cls =
        Option.value ~default:0 (Hashtbl.find_opt stats.inj_by_class cls)
      in
      if applied "corrupt_batch" + applied "corrupt_reply" > 0 && malformed_total = 0 then
        violate ctx
          "corruptions applied (%d batch, %d reply) but no slot was ever counted malformed"
          (applied "corrupt_batch") (applied "corrupt_reply");
      { sr_seed = seed;
        sr_planned = List.length plan;
        sr_applied = stats.inj_applied;
        sr_skipped = stats.inj_skipped;
        sr_by_class = by_class stats;
        sr_detections = st.Supervisor.st_detections;
        sr_restarts = st.Supervisor.st_restarts;
        sr_deaths = ctx.iv_deaths;
        sr_state = Supervisor.state sv;
        sr_offered = tr.tr_offered;
        sr_sent = tr.tr_sent;
        sr_dropped = tr.tr_dropped;
        sr_wire_frames = !(w.wire);
        sr_backlog = bl;
        sr_max_outage_ns = !max_outage;
        sr_malformed = malformed_total;
        sr_violations = List.rev ctx.iv_violations;
        sr_sched = pending_sched })
  in
  { report with
    sr_sched =
      finish_sched ~scenario:"soak" ~seed ~sched ~eng:w.eng rec_
        ~violations:report.sr_violations }

(* ---- single-fault recovery latency, for the bench harness ---- *)

type recovery_sample = {
  rs_fault : string;
  rs_detect_ns : int;
  rs_outage_ns : int;
}

let measure_recovery ?seed:_ fault =
  let w = make_world () in
  in_world w (fun () ->
      let sv =
        match
          Supervisor.start w.k w.sp ~policy:(soak_policy ~max_restarts:10) ~bdf:w.bdf
            honest_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("measure_recovery: " ^ e)
      in
      let dev = Supervisor.netdev sv in
      (match Netstack.ifconfig_up w.k.Kernel.net dev with
       | Ok () -> ()
       | Error e -> failwith ("measure_recovery: ifconfig up: " ^ e));
      let tr = start_traffic w dev ~gap_ns:200_000 in
      let restored = ref None in
      Supervisor.on_event sv (function
          | Supervisor.Driver_restarted { outage_ns; _ } when !restored = None ->
            restored := Some outage_ns
          | _ -> ());
      ignore (Fiber.sleep w.eng 5_000_000 : Fiber.wake);
      if not (inject ~sv ~dma_violate:(dma_violate w) fault) then
        failwith ("measure_recovery: injection not applied: " ^ fault_name fault);
      let rec wait budget =
        match !restored with
        | Some _ -> ()
        | None when budget = 0 -> ()
        | None ->
          ignore (Fiber.sleep w.eng 1_000_000 : Fiber.wake);
          wait (budget - 1)
      in
      wait 2_000;
      tr.tr_stop <- true;
      let st = Supervisor.stats sv in
      match !restored with
      | None -> failwith ("measure_recovery: no recovery observed for " ^ fault_name fault)
      | Some outage ->
        { rs_fault = fault_name fault;
          rs_detect_ns = st.Supervisor.st_last_detect_latency_ns;
          rs_outage_ns = outage })

(* ---- forced crash-loop: the restart budget must quarantine ---- *)

type quarantine_report = {
  qr_restarts : int;
  qr_quarantined : bool;
  qr_netdev_removed : bool;
  qr_sysfs_state : string;
}

let crash_loop ?(max_restarts = 3) () =
  let w = make_world () in
  in_world w (fun () ->
      let sv =
        match
          Supervisor.start w.k w.sp ~policy:(soak_policy ~max_restarts) ~bdf:w.bdf
            honest_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("crash_loop: " ^ e)
      in
      let dev = Supervisor.netdev sv in
      (match Netstack.ifconfig_up w.k.Kernel.net dev with
       | Ok () -> ()
       | Error e -> failwith ("crash_loop: ifconfig up: " ^ e));
      (* Kill every fresh generation as soon as it comes up. *)
      ignore
        (Process.spawn_fiber (Process.kernel_process w.k.Kernel.procs) ~name:"crash-looper"
           (fun () ->
              let rec loop () =
                if Supervisor.state sv <> Supervisor.Quarantined then begin
                  ignore (inject ~sv Crash : bool);
                  ignore (Fiber.sleep w.eng 2_000_000 : Fiber.wake);
                  loop ()
                end
              in
              loop ())
         : Fiber.t);
      let rec wait budget =
        if budget > 0 && Supervisor.state sv <> Supervisor.Quarantined then begin
          ignore (Fiber.sleep w.eng 10_000_000 : Fiber.wake);
          wait (budget - 1)
        end
      in
      wait 1_000;
      let st = Supervisor.stats sv in
      let sysfs_state =
        match Sysfs.find_bdf w.k.Kernel.sysfs w.bdf with
        | Some e -> Option.value ~default:"" (Sysfs.attr e "sud_state")
        | None -> ""
      in
      { qr_restarts = st.Supervisor.st_restarts;
        qr_quarantined = Supervisor.state sv = Supervisor.Quarantined;
        qr_netdev_removed = Netstack.find_netdev w.k.Kernel.net (Netdev.name dev) = None;
        qr_sysfs_state = sysfs_state })

(* ---- sud-blk: storage fault classes and the crash-consistency soak ---- *)

type blk_fault =
  | Bcrash                 (* kill -9 the block driver *)
  | Bhang                  (* wedge its upcall loop *)
  | Corrupt_completion     (* device flips bits in the next CQE's command id *)
  | Drop_completion        (* the next completion evaporates *)
  | Drop_flush             (* the next flush neither persists nor acks *)
  | Crash_mid_barrier      (* kill the driver while a flush is in flight *)

let all_blk_faults =
  [ Bcrash; Bhang; Corrupt_completion; Drop_completion; Drop_flush; Crash_mid_barrier ]

let blk_fault_name = function
  | Bcrash -> "crash"
  | Bhang -> "hang"
  | Corrupt_completion -> "corrupt_completion"
  | Drop_completion -> "drop_completion"
  | Drop_flush -> "drop_flush"
  | Crash_mid_barrier -> "crash_mid_barrier"

type blk_injection = { bat_ns : int; bfault : blk_fault }
type blk_plan = blk_injection list

let random_blk_plan ~seed ~duration_ns ~n ?(faults = all_blk_faults) () =
  if n < 0 || duration_ns <= 0 then invalid_arg "Fault_inject.random_blk_plan";
  let rng = Rng.create ~seed in
  let arr = Array.of_list faults in
  List.init n (fun _ ->
      { bat_ns = Rng.int rng duration_ns; bfault = arr.(Rng.int rng (Array.length arr)) })
  |> List.sort (fun a b -> compare a.bat_ns b.bat_ns)

type blk_world = {
  bw_eng : Engine.t;
  bw_k : Kernel.t;
  bw_sp : Safe_pci.t;
  bw_nvme : Nvme_dev.t;
  bw_bdf : Bus.bdf;
}

let make_blk_world ?capacity () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let nvme = Nvme_dev.create eng ?capacity () in
  let bdf = Kernel.attach_pci k (Nvme_dev.device nvme) in
  let sp = Safe_pci.init k in
  { bw_eng = eng; bw_k = k; bw_sp = sp; bw_nvme = nvme; bw_bdf = bdf }

let in_blk_world ?(max_ms = 120_000) w main =
  let result = ref None in
  ignore
    (Process.spawn_fiber (Process.kernel_process w.bw_k.Kernel.procs) ~name:"blk-soak"
       (fun () -> result := Some (main ()))
     : Fiber.t);
  Engine.run ~max_time:(Engine.now w.bw_eng + (max_ms * 1_000_000)) w.bw_eng;
  match !result with Some r -> r | None -> failwith "blk soak did not complete"

let honest_blk_factory ~attempt:_ = Nvme.driver

(* Apply one storage fault.  The device-level classes (corrupt/drop
   completion, drop flush) arm a one-shot hook on the emulated NVMe that
   fires on the next matching command — the continuous workload
   guarantees one arrives.  None of them produce a direct detection
   signal; they escalate through the proxy's per-request timeout, so
   every class here ends in a supervised recovery.  Must run in a fiber
   (Crash_mid_barrier sleeps, stalking a flush). *)
let blk_inject ~eng ~sv ~nvme fault =
  if Supervisor.state sv <> Supervisor.Running then false
  else
    match fault with
    | Bcrash ->
      (match Supervisor.proc sv with
       | Some p when Process.is_alive p ->
         Process.kill p;
         true
       | Some _ | None -> false)
    | Bhang ->
      (match Supervisor.chan sv with
       | Some chan when not (Uchan.is_closed chan) ->
         Uchan.wedge chan;
         true
       | Some _ | None -> false)
    | Corrupt_completion ->
      Nvme_dev.inject_corrupt_completion nvme ~mask:0x15;
      true
    | Drop_completion ->
      Nvme_dev.inject_drop_completion nvme;
      true
    | Drop_flush ->
      Nvme_dev.inject_drop_flush nvme;
      true
    | Crash_mid_barrier ->
      (match Supervisor.current_blk sv with
       | None -> false
       | Some s ->
         let proxy = Driver_host.blk_proxy s in
         (* Wait (bounded) for a flush barrier to be on the wire, then
            kill: the nastiest instant for durability bookkeeping.  If
            none shows up the kill still lands — it degrades to Bcrash. *)
         let rec stalk budget =
           if budget > 0 && not (Proxy_blk.inflight_flush proxy) then begin
             ignore (Fiber.sleep eng 100_000 : Fiber.wake);
             stalk (budget - 1)
           end
         in
         stalk 200;
         (match Supervisor.proc sv with
          | Some p when Process.is_alive p ->
            Process.kill p;
            true
          | Some _ | None -> false))

(* Walk a blk plan; same live-target discipline as the net runner. *)
let run_blk_plan k ~sv ~nvme ?(stats = new_injector_stats ()) plan =
  let eng = k.Kernel.eng in
  let t0 = Engine.now eng in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"blk-fault-injector"
       (fun () ->
          List.iter
            (fun { bat_ns; bfault } ->
               let dt = t0 + bat_ns - Engine.now eng in
               if dt > 0 then ignore (Fiber.sleep eng dt : Fiber.wake);
               let target_live () =
                 match Supervisor.state sv with
                 | Supervisor.Running ->
                   (match Supervisor.proc sv with
                    | Some p -> Process.is_alive p
                    | None -> false)
                 | Supervisor.Recovering -> false
                 | _ -> true
               in
               let rec wait_running budget =
                 if budget > 0 && not (target_live ()) then begin
                   ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
                   wait_running (budget - 1)
                 end
               in
               wait_running 1_000;
               if blk_inject ~eng ~sv ~nvme bfault then begin
                 stats.inj_applied <- stats.inj_applied + 1;
                 let n = blk_fault_name bfault in
                 Hashtbl.replace stats.inj_by_class n
                   (1 + Option.value ~default:0 (Hashtbl.find_opt stats.inj_by_class n))
               end
               else stats.inj_skipped <- stats.inj_skipped + 1)
            plan)
     : Fiber.t);
  stats

let blk_by_class st =
  List.map
    (fun f ->
       ( blk_fault_name f,
         Option.value ~default:0 (Hashtbl.find_opt st.inj_by_class (blk_fault_name f)) ))
    all_blk_faults

(* ---- the crash-consistency oracle ----

   One synchronous workload fiber writes patterned full pages.  Because
   Blkdev.write blocks until the cache accepts (and the queue acks) the
   page, the fiber's [last_acked] array is, at every instant it runs,
   exactly the set of acknowledged writes.  Media may only be compared
   against it at one kind of instant: immediately after an [fsync]
   returns Ok, when everything acknowledged is durable by contract and
   nothing newer has been issued (single writer).  Every supervised
   restart forces such a check, so "no acked write lost, no unacked
   write visible" is asserted at every recovery. *)

type blk_load = {
  mutable wl_writes : int;
  mutable wl_reads : int;
  mutable wl_fsyncs : int;
  mutable wl_verifies : int;
  mutable wl_io_errors : int;
  mutable wl_check_pending : bool;   (* set on Driver_restarted *)
  mutable wl_stop : bool;
  mutable wl_done : bool;
}

let io_timeout_ns = 5_000_000_000

let blk_soak_pages = 64

type blk_soak_report = {
  bsr_seed : int64;
  bsr_planned : int;
  bsr_applied : int;
  bsr_skipped : int;
  bsr_by_class : (string * int) list;
  bsr_detections : int;
  bsr_restarts : int;
  bsr_deaths : int;
  bsr_state : Supervisor.state;
  bsr_writes : int;
  bsr_reads : int;
  bsr_fsyncs : int;
  bsr_verifies : int;
  bsr_io_errors : int;
  bsr_max_outage_ns : int;
  bsr_retained_end : int;
  bsr_inflight_end : int;
  bsr_by_reason : (string * int) list;
  bsr_violations : string list;
  bsr_sched : sched_summary;
}

let blk_soak ?sched ?seed ?(n_faults = 200) ?(duration_ms = 6_000) ?plan () =
  let seed = match seed with Some s -> s | None -> dseed "blk-soak" in
  let w = make_blk_world () in
  let rec_ = Option.map (fun s -> Sched.install w.bw_eng s) sched in
  let report =
    in_blk_world w (fun () ->
      let k = w.bw_k in
      let secret_addr = Phys_mem.alloc_pages k.Kernel.mem ~pages:1 in
      Phys_mem.write k.Kernel.mem ~addr:secret_addr (Bytes.of_string secret);
      let sv =
        match
          Supervisor.start_blk k w.bw_sp ~policy:(soak_policy ~max_restarts:max_int)
            ~bdf:w.bw_bdf honest_blk_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("blk_soak: supervised start failed: " ^ e)
      in
      let ctx = install_invariants_for ~k ~bdf:w.bw_bdf sv ~secret_addr in
      let bd =
        match Supervisor.blkdev sv with
        | Some bd -> bd
        | None -> failwith "blk_soak: no blkdev after start"
      in
      let load =
        { wl_writes = 0; wl_reads = 0; wl_fsyncs = 0; wl_verifies = 0; wl_io_errors = 0;
          wl_check_pending = false; wl_stop = false; wl_done = false }
      in
      let max_outage = ref 0 in
      let reasons = Hashtbl.create 8 in
      Supervisor.on_event sv (function
          | Supervisor.Driver_restarted { outage_ns; _ } ->
            if outage_ns > !max_outage then max_outage := outage_ns;
            if outage_ns > outage_bound_ns then
              violate ctx "recovery outage %d ms exceeds bound" (outage_ns / 1_000_000);
            load.wl_check_pending <- true
          | Supervisor.Fault_detected reason ->
            Hashtbl.replace reasons reason
              (1 + Option.value ~default:0 (Hashtbl.find_opt reasons reason))
          | _ -> ());
      (* Per-page ground truth: the last write this fiber saw acked. *)
      let last_acked = Array.make blk_soak_pages None in
      let pattern page gen =
        Bytes.init Blkdev.page_size (fun i ->
            Char.chr ((page * 131 + gen * 31 + i) land 0xff))
      in
      let verify_media why =
        load.wl_verifies <- load.wl_verifies + 1;
        Array.iteri
          (fun page data ->
             match data with
             | None -> ()
             | Some data ->
               let lba0 = page * Blkdev.page_sectors in
               for s = 0 to Blkdev.page_sectors - 1 do
                 let expect =
                   Bytes.sub data (s * Blkdev.sector_size) Blkdev.sector_size
                 in
                 match Nvme_dev.media_sector w.bw_nvme ~lba:(lba0 + s) with
                 | None ->
                   violate ctx "%s: acked write to sector %d lost (never on media)"
                     why (lba0 + s)
                 | Some got ->
                   if not (Bytes.equal got expect) then
                     violate ctx "%s: media mismatch at sector %d" why (lba0 + s)
               done)
          last_acked
      in
      let fsync_and_verify why =
        match Blkdev.fsync bd ~timeout_ns:io_timeout_ns () with
        | Ok () ->
          load.wl_fsyncs <- load.wl_fsyncs + 1;
          verify_media why
        | Error e ->
          load.wl_io_errors <- load.wl_io_errors + 1;
          violate ctx "%s: fsync failed: %s" why e
      in
      let rng = Rng.create ~seed:(Int64.add seed 1L) in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"blk-load"
           (fun () ->
              let gen = ref 0 in
              while not load.wl_stop do
                if load.wl_check_pending then begin
                  load.wl_check_pending <- false;
                  fsync_and_verify "post-recovery check"
                end;
                incr gen;
                let page = Rng.int rng blk_soak_pages in
                let data = pattern page !gen in
                (match
                   Blkdev.write bd ~timeout_ns:io_timeout_ns
                     ~lba:(page * Blkdev.page_sectors) data ()
                 with
                 | Ok () ->
                   load.wl_writes <- load.wl_writes + 1;
                   last_acked.(page) <- Some data
                 | Error e ->
                   load.wl_io_errors <- load.wl_io_errors + 1;
                   violate ctx "write to page %d failed: %s" page e);
                (* Read-back: the cache must agree with the last ack. *)
                if !gen mod 4 = 0 then begin
                  let rp = Rng.int rng blk_soak_pages in
                  match last_acked.(rp) with
                  | None -> ()
                  | Some expect ->
                    (match
                       Blkdev.read bd ~timeout_ns:io_timeout_ns
                         ~lba:(rp * Blkdev.page_sectors) ~sectors:Blkdev.page_sectors ()
                     with
                     | Ok got ->
                       load.wl_reads <- load.wl_reads + 1;
                       if not (Bytes.equal got expect) then
                         violate ctx "read of page %d disagrees with last acked write" rp
                     | Error e ->
                       load.wl_io_errors <- load.wl_io_errors + 1;
                       violate ctx "read of page %d failed: %s" rp e)
                end;
                if !gen mod 6 = 0 then fsync_and_verify "periodic check";
                ignore (Fiber.sleep w.bw_eng 50_000 : Fiber.wake)
              done;
              load.wl_done <- true)
         : Fiber.t);
      let plan =
        match plan with
        | Some p -> p
        | None -> random_blk_plan ~seed ~duration_ns:(duration_ms * 1_000_000) ~n:n_faults ()
      in
      let stats = run_blk_plan k ~sv ~nvme:w.bw_nvme plan in
      ignore (Fiber.sleep w.bw_eng ((duration_ms + 200) * 1_000_000) : Fiber.wake);
      let rec drain budget =
        if budget > 0 && Supervisor.state sv = Supervisor.Recovering then begin
          ignore (Fiber.sleep w.bw_eng 10_000_000 : Fiber.wake);
          drain (budget - 1)
        end
      in
      drain 200;
      load.wl_stop <- true;
      let rec join budget =
        if budget > 0 && not load.wl_done then begin
          ignore (Fiber.sleep w.bw_eng 10_000_000 : Fiber.wake);
          join (budget - 1)
        end
      in
      join 1_000;
      (* The end-of-soak barrier: everything acked must be durable and
         the proxy's retention fully drained. *)
      fsync_and_verify "final check";
      let retained, inflight =
        match Supervisor.current_blk sv with
        | Some s ->
          let p = Driver_host.blk_proxy s in
          (Proxy_blk.retained p, Proxy_blk.inflight p)
        | None -> (-1, -1)
      in
      if retained <> 0 then
        violate ctx "final fsync left %d writes retained (flush did not cover)" retained;
      if inflight <> 0 then begin
        violate ctx "%d requests still in flight after final fsync" inflight;
        match Supervisor.current_blk sv with
        | Some s -> violate ctx "stuck:\n%s" (Proxy_blk.inflight_summary (Driver_host.blk_proxy s))
        | None -> ()
      end;
      let st = Supervisor.stats sv in
      if Supervisor.state sv <> Supervisor.Running then
        violate ctx "blk soak ended with supervisor not Running";
      if ctx.iv_deaths <> st.Supervisor.st_detections then
        violate ctx "detections %d but deaths %d" st.Supervisor.st_detections ctx.iv_deaths;
      { bsr_seed = seed;
        bsr_planned = List.length plan;
        bsr_applied = stats.inj_applied;
        bsr_skipped = stats.inj_skipped;
        bsr_by_class = blk_by_class stats;
        bsr_detections = st.Supervisor.st_detections;
        bsr_restarts = st.Supervisor.st_restarts;
        bsr_deaths = ctx.iv_deaths;
        bsr_state = Supervisor.state sv;
        bsr_writes = load.wl_writes;
        bsr_reads = load.wl_reads;
        bsr_fsyncs = load.wl_fsyncs;
        bsr_verifies = load.wl_verifies;
        bsr_io_errors = load.wl_io_errors;
        bsr_max_outage_ns = !max_outage;
        bsr_retained_end = retained;
        bsr_inflight_end = inflight;
        bsr_by_reason =
          Hashtbl.fold (fun r n acc -> (r, n) :: acc) reasons []
          |> List.sort (fun (ra, a) (rb, b) ->
                 (* count desc, then name: hash order must not pick the
                    tie-break winner or reports differ across replays. *)
                 match compare b a with 0 -> compare ra rb | c -> c);
        bsr_violations = List.rev ctx.iv_violations;
        bsr_sched = pending_sched })
  in
  { report with
    bsr_sched =
      finish_sched ~scenario:"blk-soak" ~seed ~sched ~eng:w.bw_eng rec_
        ~violations:report.bsr_violations }

(* ---- single-fault blk recovery latency, for the bench harness ---- *)

let measure_blk_recovery ?seed:_ fault =
  let w = make_blk_world () in
  (* Injection at 5 ms, recovery waited on for at most ~2 s: a 10 s
     sim bound keeps the engine from idling through the default two
     sim-minutes of watchdog ticks after the sample is taken. *)
  in_blk_world ~max_ms:10_000 w (fun () ->
      let k = w.bw_k in
      let sv =
        match
          Supervisor.start_blk k w.bw_sp ~policy:(soak_policy ~max_restarts:10)
            ~bdf:w.bw_bdf honest_blk_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("measure_blk_recovery: " ^ e)
      in
      let bd = Option.get (Supervisor.blkdev sv) in
      let stop = ref false in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"blk-load"
           (fun () ->
              let gen = ref 0 in
              while not !stop do
                incr gen;
                let page = !gen mod 8 in
                let data = Bytes.make Blkdev.page_size (Char.chr (!gen land 0xff)) in
                ignore
                  (Blkdev.write bd ~timeout_ns:io_timeout_ns
                     ~lba:(page * Blkdev.page_sectors) data ()
                   : (unit, string) result);
                if !gen mod 4 = 0 then
                  ignore (Blkdev.fsync bd ~timeout_ns:io_timeout_ns () : (unit, string) result);
                ignore (Fiber.sleep w.bw_eng 50_000 : Fiber.wake)
              done)
         : Fiber.t);
      let restored = ref None in
      Supervisor.on_event sv (function
          | Supervisor.Driver_restarted { outage_ns; _ } when !restored = None ->
            restored := Some outage_ns
          | _ -> ());
      ignore (Fiber.sleep w.bw_eng 5_000_000 : Fiber.wake);
      if not (blk_inject ~eng:w.bw_eng ~sv ~nvme:w.bw_nvme fault) then
        failwith ("measure_blk_recovery: injection not applied: " ^ blk_fault_name fault);
      let rec wait budget =
        match !restored with
        | Some _ -> ()
        | None when budget = 0 -> ()
        | None ->
          ignore (Fiber.sleep w.bw_eng 1_000_000 : Fiber.wake);
          wait (budget - 1)
      in
      wait 2_000;
      stop := true;
      let st = Supervisor.stats sv in
      match !restored with
      | None ->
        failwith ("measure_blk_recovery: no recovery observed for " ^ blk_fault_name fault)
      | Some outage ->
        { rs_fault = "blk_" ^ blk_fault_name fault;
          rs_detect_ns = st.Supervisor.st_last_detect_latency_ns;
          rs_outage_ns = outage })

(* ---- warm standby: upgrades, poison, and the interleaving soak ---- *)

type upgrade_fault = Upgrade_during_fault | Standby_poisoned

let all_upgrade_faults = [ Upgrade_during_fault; Standby_poisoned ]

let upgrade_fault_name = function
  | Upgrade_during_fault -> "upgrade_during_fault"
  | Standby_poisoned -> "standby_poisoned"

let inject_standby_poison ~sv =
  match Supervisor.standby_proc sv with
  | Some p when Process.is_alive p ->
    Process.kill p;
    true
  | Some _ | None -> false

(* Bounded wait for the warm slot; the watchdog's [ensure] keeps
   re-warming, so Ready is eventually reached unless quarantined. *)
let wait_standby_ready ~eng sv ~budget_ms =
  let rec loop budget =
    if Supervisor.standby_status sv = Standby.Ready then true
    else if budget = 0 then false
    else begin
      ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
      loop (budget - 1)
    end
  in
  loop budget_ms

let wait_running ~eng sv ~budget_ms =
  let rec loop budget =
    if Supervisor.state sv = Supervisor.Running then true
    else if budget = 0 then false
    else begin
      ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
      loop (budget - 1)
    end
  in
  loop budget_ms

type upgrade_soak_report = {
  usr_seed : int64;
  usr_interleavings : int;
  usr_upgrades : int;
  usr_warm_swaps : int;
  usr_cold_restarts : int;
  usr_poisoned : int;
  usr_writes : int;
  usr_fsyncs : int;
  usr_verifies : int;
  usr_io_errors : int;
  usr_state : Supervisor.state;
  usr_violations : string list;
  usr_sched : sched_summary;
}

let upgrade_soak ?sched ?seed ?(interleavings = 20) () =
  let seed = match seed with Some s -> s | None -> dseed "upgrade-soak" in
  let w = make_blk_world () in
  let rec_ = Option.map (fun s -> Sched.install w.bw_eng s) sched in
  let report =
    in_blk_world ~max_ms:180_000 w (fun () ->
      let k = w.bw_k in
      let eng = w.bw_eng in
      let secret_addr = Phys_mem.alloc_pages k.Kernel.mem ~pages:1 in
      Phys_mem.write k.Kernel.mem ~addr:secret_addr (Bytes.of_string secret);
      let sv =
        match
          Supervisor.start_blk k w.bw_sp ~policy:(warm_policy ~max_restarts:max_int)
            ~bdf:w.bw_bdf honest_blk_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("upgrade_soak: supervised start failed: " ^ e)
      in
      let ctx = install_invariants_for ~k ~bdf:w.bw_bdf sv ~secret_addr in
      let bd =
        match Supervisor.blkdev sv with
        | Some bd -> bd
        | None -> failwith "upgrade_soak: no blkdev after start"
      in
      let load =
        { wl_writes = 0; wl_reads = 0; wl_fsyncs = 0; wl_verifies = 0; wl_io_errors = 0;
          wl_check_pending = false; wl_stop = false; wl_done = false }
      in
      Supervisor.on_event sv (function
          | Supervisor.Driver_restarted _ -> load.wl_check_pending <- true
          | _ -> ());
      let last_acked = Array.make blk_soak_pages None in
      let pattern page gen =
        Bytes.init Blkdev.page_size (fun i ->
            Char.chr ((page * 131 + gen * 31 + i) land 0xff))
      in
      let verify_media why =
        load.wl_verifies <- load.wl_verifies + 1;
        Array.iteri
          (fun page data ->
             match data with
             | None -> ()
             | Some data ->
               let lba0 = page * Blkdev.page_sectors in
               for s = 0 to Blkdev.page_sectors - 1 do
                 let expect =
                   Bytes.sub data (s * Blkdev.sector_size) Blkdev.sector_size
                 in
                 match Nvme_dev.media_sector w.bw_nvme ~lba:(lba0 + s) with
                 | None ->
                   violate ctx "%s: acked write to sector %d lost (never on media)"
                     why (lba0 + s)
                 | Some got ->
                   if not (Bytes.equal got expect) then
                     violate ctx "%s: media mismatch at sector %d" why (lba0 + s)
               done)
          last_acked
      in
      let fsync_and_verify why =
        match Blkdev.fsync bd ~timeout_ns:io_timeout_ns () with
        | Ok () ->
          load.wl_fsyncs <- load.wl_fsyncs + 1;
          verify_media why
        | Error e ->
          load.wl_io_errors <- load.wl_io_errors + 1;
          violate ctx "%s: fsync failed: %s" why e
      in
      let rng = Rng.create ~seed in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"blk-load"
           (fun () ->
              let gen = ref 0 in
              while not load.wl_stop do
                if load.wl_check_pending then begin
                  load.wl_check_pending <- false;
                  fsync_and_verify "post-recovery check"
                end;
                incr gen;
                let page = Rng.int rng blk_soak_pages in
                let data = pattern page !gen in
                (match
                   Blkdev.write bd ~timeout_ns:io_timeout_ns
                     ~lba:(page * Blkdev.page_sectors) data ()
                 with
                 | Ok () ->
                   load.wl_writes <- load.wl_writes + 1;
                   last_acked.(page) <- Some data
                 | Error e ->
                   load.wl_io_errors <- load.wl_io_errors + 1;
                   violate ctx "write to page %d failed: %s" page e);
                if !gen mod 6 = 0 then begin
                  match Blkdev.fsync bd ~timeout_ns:io_timeout_ns () with
                  | Ok () -> load.wl_fsyncs <- load.wl_fsyncs + 1
                  | Error e ->
                    load.wl_io_errors <- load.wl_io_errors + 1;
                    violate ctx "periodic fsync failed: %s" e
                end;
                ignore (Fiber.sleep eng 50_000 : Fiber.wake)
              done;
              load.wl_done <- true)
         : Fiber.t);
      (* Let the first writes land and the first standby warm up. *)
      ignore (Fiber.sleep eng 5_000_000 : Fiber.wake);
      for i = 1 to interleavings do
        (match Rng.int rng 6 with
         | 0 ->
           (* Plain live upgrade: zero-loss swap to the standby. *)
           ignore (wait_standby_ready ~eng sv ~budget_ms:2_000 : bool);
           (match Supervisor.upgrade sv with
            | Ok () -> ()
            | Error e -> violate ctx "interleaving %d: upgrade failed: %s" i e)
         | 1 ->
           (* Administrative failover: the fire drill through recover. *)
           (match Supervisor.failover sv with
            | Ok () -> ()
            | Error e -> violate ctx "interleaving %d: failover failed: %s" i e)
         | 2 ->
           (* A lethal fault while the standby is warm: the swap path. *)
           ignore (wait_standby_ready ~eng sv ~budget_ms:2_000 : bool);
           ignore (blk_inject ~eng ~sv ~nvme:w.bw_nvme Bcrash : bool)
         | 3 ->
           (* A device-level fault that escalates through the request
              timeout — recovery with retained-write replay. *)
           let f =
             match Rng.int rng 3 with
             | 0 -> Corrupt_completion
             | 1 -> Drop_completion
             | _ -> Drop_flush
           in
           ignore (blk_inject ~eng ~sv ~nvme:w.bw_nvme f : bool)
         | 4 ->
           (* standby_poisoned: kill the parked generation, then upgrade.
              The poisoned slot must be discarded and rebuilt, never
              swapped in. *)
           ignore (wait_standby_ready ~eng sv ~budget_ms:2_000 : bool);
           let _, poisoned0 = Supervisor.standby_stats sv in
           if inject_standby_poison ~sv then begin
             (match Supervisor.upgrade sv with
              | Ok () -> ()
              | Error e ->
                violate ctx "interleaving %d: upgrade after poison failed: %s" i e);
             let _, poisoned1 = Supervisor.standby_stats sv in
             if poisoned1 <= poisoned0 then
               violate ctx
                 "interleaving %d: poisoned standby was never detected as poisoned" i
           end
         | _ ->
           (* upgrade_during_fault: a crash racing the upgrade drain.
              Either order is a legal interleaving — the upgrade may
              fail ("driver not running" or double failover), but acked
              writes must survive regardless. *)
           ignore (wait_standby_ready ~eng sv ~budget_ms:2_000 : bool);
           let delay_ns = 200_000 + Rng.int rng 3_000_000 in
           ignore
             (Process.spawn_fiber (Process.kernel_process k.Kernel.procs)
                ~name:"upgrade-crasher" (fun () ->
                    ignore (Fiber.sleep eng delay_ns : Fiber.wake);
                    ignore (blk_inject ~eng ~sv ~nvme:w.bw_nvme Bcrash : bool))
              : Fiber.t);
           ignore (Supervisor.upgrade sv : (unit, string) result));
        if not (wait_running ~eng sv ~budget_ms:5_000) then
          violate ctx "interleaving %d: supervisor not Running afterwards" i
        else begin
          (* The media sweep must not race the writer: hand the check to
             the load fiber (the only mutator of [last_acked]), exactly
             like the post-recovery checks. *)
          load.wl_check_pending <- true;
          let rec wait_check budget =
            if budget > 0 && load.wl_check_pending then begin
              ignore (Fiber.sleep eng 1_000_000 : Fiber.wake);
              wait_check (budget - 1)
            end
          in
          wait_check 2_000
        end
      done;
      load.wl_stop <- true;
      let rec join budget =
        if budget > 0 && not load.wl_done then begin
          ignore (Fiber.sleep eng 10_000_000 : Fiber.wake);
          join (budget - 1)
        end
      in
      join 1_000;
      fsync_and_verify "final check";
      let st = Supervisor.stats sv in
      if Supervisor.state sv <> Supervisor.Running then
        violate ctx "upgrade soak ended with supervisor not Running";
      let _, poisoned = Supervisor.standby_stats sv in
      { usr_seed = seed;
        usr_interleavings = interleavings;
        usr_upgrades = st.Supervisor.st_upgrades;
        usr_warm_swaps = st.Supervisor.st_warm_swaps;
        usr_cold_restarts = st.Supervisor.st_restarts - st.Supervisor.st_warm_swaps;
        usr_poisoned = poisoned;
        usr_writes = load.wl_writes;
        usr_fsyncs = load.wl_fsyncs;
        usr_verifies = load.wl_verifies;
        usr_io_errors = load.wl_io_errors;
        usr_state = Supervisor.state sv;
        usr_violations = invariant_violations ctx;
        usr_sched = pending_sched })
  in
  { report with
    usr_sched =
      finish_sched ~scenario:"upgrade-soak" ~seed ~sched ~eng:w.bw_eng rec_
        ~violations:report.usr_violations }

(* ---- per-class warm failover latency, for sud-bench/8 ---- *)

let measure_warm_blk_recovery ?seed:_ fault =
  let w = make_blk_world () in
  in_blk_world ~max_ms:10_000 w (fun () ->
      let k = w.bw_k in
      let sv =
        match
          Supervisor.start_blk k w.bw_sp ~policy:(warm_policy ~max_restarts:10)
            ~bdf:w.bw_bdf honest_blk_factory
        with
        | Ok sv -> sv
        | Error e -> failwith ("measure_warm_blk_recovery: " ^ e)
      in
      let bd = Option.get (Supervisor.blkdev sv) in
      let stop = ref false in
      ignore
        (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"blk-load"
           (fun () ->
              let gen = ref 0 in
              while not !stop do
                incr gen;
                let page = !gen mod 8 in
                let data = Bytes.make Blkdev.page_size (Char.chr (!gen land 0xff)) in
                ignore
                  (Blkdev.write bd ~timeout_ns:io_timeout_ns
                     ~lba:(page * Blkdev.page_sectors) data ()
                   : (unit, string) result);
                if !gen mod 4 = 0 then
                  ignore (Blkdev.fsync bd ~timeout_ns:io_timeout_ns () : (unit, string) result);
                ignore (Fiber.sleep w.bw_eng 50_000 : Fiber.wake)
              done)
         : Fiber.t);
      let restored = ref None in
      Supervisor.on_event sv (function
          | Supervisor.Driver_restarted { outage_ns; _ } when !restored = None ->
            restored := Some outage_ns
          | _ -> ());
      ignore (Fiber.sleep w.bw_eng 5_000_000 : Fiber.wake);
      (* The whole point is the warm path: never inject before the
         standby is parked and Ready. *)
      if not (wait_standby_ready ~eng:w.bw_eng sv ~budget_ms:2_000) then
        failwith "measure_warm_blk_recovery: standby never became Ready";
      if not (blk_inject ~eng:w.bw_eng ~sv ~nvme:w.bw_nvme fault) then
        failwith
          ("measure_warm_blk_recovery: injection not applied: " ^ blk_fault_name fault);
      let rec wait budget =
        match !restored with
        | Some _ -> ()
        | None when budget = 0 -> ()
        | None ->
          ignore (Fiber.sleep w.bw_eng 1_000_000 : Fiber.wake);
          wait (budget - 1)
      in
      wait 2_000;
      stop := true;
      let st = Supervisor.stats sv in
      match !restored with
      | None ->
        failwith
          ("measure_warm_blk_recovery: no recovery observed for " ^ blk_fault_name fault)
      | Some outage ->
        if Supervisor.warm_swaps sv = 0 then
          failwith
            ("measure_warm_blk_recovery: recovery for " ^ blk_fault_name fault
             ^ " took the cold path");
        { rs_fault = "blk_" ^ blk_fault_name fault;
          rs_detect_ns = st.Supervisor.st_last_detect_latency_ns;
          rs_outage_ns = outage })
