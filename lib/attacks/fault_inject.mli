(** Seeded deterministic fault injection and the supervision soak harness.

    The security evaluation ({!Scenarios}) shows each attack contained
    once; this module shows the {!Supervisor} surviving {e hundreds} of
    faults in a row under live traffic, with the containment invariants
    checked at every driver death.  All randomness comes from an explicit
    seed, so a failing soak replays exactly. *)

(** One injectable fault class, mapped onto the supervisor's detection
    signals:

    - [Crash] — [kill -9] the driver process (exit-hook kick);
    - [Hang] — wedge the driver's main upcall loop ({!Uchan.wedge}); the
      heartbeat ping times out;
    - [Corrupt_reply] — the next upcall reply slot is overwritten with
      garbage; the kernel worker counts it malformed;
    - [Drop_reply] — the next upcall reply evaporates; the sender hits
      the hang deadline;
    - [Dma_violation] — device-level DMA to an unmapped address; the
      IOMMU faults and attributes it to the device's BDF;
    - [Corrupt_batch] — one frame inside the driver's next multi-frame
      downcall batch is garbled in place; the kernel worker drops exactly
      that frame ([um_malformed_frames] ticks) and delivers its siblings.  The
      only fault class that must {e not} escalate to a restart. *)
type fault = Crash | Hang | Corrupt_reply | Drop_reply | Dma_violation | Corrupt_batch

val all_faults : fault list
val fault_name : fault -> string

val lethal : fault -> bool
(** Whether this class ends in a driver death and restart.  [false] only
    for [Corrupt_batch], which is contained frame-by-frame — use it to
    filter classes before {!measure_recovery}, which needs a recovery to
    observe. *)

(** {1 Plan DSL} *)

type injection = { at_ns : int; fault : fault }
type plan = injection list

val random_plan :
  seed:int64 -> duration_ns:int -> n:int -> ?faults:fault list -> unit -> plan
(** [n] injections at uniform times in [\[0, duration_ns)], classes drawn
    uniformly from [faults] (default all), sorted by time.  Same seed,
    same plan. *)

type injector_stats = {
  mutable inj_applied : int;
  mutable inj_skipped : int;
  inj_by_class : (string, int) Hashtbl.t;
}

val inject : sv:Supervisor.t -> ?dma_violate:(unit -> unit) -> fault -> bool
(** Apply one fault to the supervisor's current driver generation right
    now.  Returns [false] (not applied) when the supervisor is not
    [Running] or the fault has no live target. *)

val run_plan :
  Kernel.t ->
  sv:Supervisor.t ->
  ?dma_violate:(unit -> unit) ->
  ?stats:injector_stats ->
  plan ->
  injector_stats
(** Spawn an injector fiber that walks the plan, sleeping to each
    instant (relative to now) and waiting for the supervisor to return
    to [Running] so every fault lands on a live driver.  Returns the
    (live-updating) stats record immediately. *)

(** {1 Soak harness}

    The world, traffic generator and containment-invariant checker the
    soak runs in, exported so other adversarial campaigns
    ({!Proto_fuzz}) run under identical conditions. *)

type world = {
  eng : Engine.t;
  k : Kernel.t;
  sp : Safe_pci.t;
  medium : Net_medium.t;
  nic : E1000_dev.t;
  bdf : Bus.bdf;
  wire : int ref;  (** frames observed on the medium *)
}

val make_world : unit -> world
(** A booted kernel, one emulated E1000 on a snooped medium, safe-PCI
    initialised. *)

val in_world : ?max_ms:int -> world -> (unit -> 'a) -> 'a
(** Run [main] in a kernel fiber and drive the engine until it returns
    (at most [max_ms] simulated milliseconds, default 30 s). *)

val secret : string
(** The canary written to a kernel page; containment means no driver
    death may ever have touched it. *)

val soak_policy : max_restarts:int -> Supervisor.policy
(** Fast supervision (1 ms tick, 10 ms hang timeout, sub-ms backoff) so
    multi-hundred-fault campaigns converge in bounded simulated time.
    Warm standby OFF: the soak, the fuzzer and the recovery benches
    measure the cold restart path. *)

val warm_policy : max_restarts:int -> Supervisor.policy
(** [soak_policy] with the warm standby enabled — lethal faults swap to
    the pre-forked generation instead of cold-starting. *)

type invariant_ctx

val install_invariants : world -> Supervisor.t -> secret_addr:int -> invariant_ctx
(** Hook the supervisor's event stream: at every driver death assert the
    kernel secret is intact, the dead generation's grant is revoked, its
    IOMMU domain detached, and no previously-mapped iova still answers
    from the IOTLB. *)

val invariant_violations : invariant_ctx -> string list
(** Failures recorded so far, oldest first; must be [[]]. *)

val invariant_deaths : invariant_ctx -> int

type traffic = {
  mutable tr_offered : int;
  mutable tr_sent : int;
  mutable tr_dropped : int;
  mutable tr_stop : bool;
}

val start_traffic : ?burst:int -> world -> Netdev.t -> gap_ns:int -> traffic
(** Continuous UDP broadcast traffic through the netdev ([burst] sends
    every [gap_ns], default burst 1); set [tr_stop] to end it. *)

val dma_violate : world -> unit -> unit
(** Device-level DMA to an address the driver never mapped — the IOMMU
    must fault and attribute it to the device's BDF. *)

val honest_factory : attempt:int -> Driver_api.net_driver
(** The honest E1000 driver, every generation. *)

(** {1 Seed plumbing and schedule capture}

    Every harness in this module defaults its seed to
    [Rng.derive ~root:default_root tag], so one printed root value
    reproduces every campaign; the soaks accept a {!Sched.spec} to run
    under an explored or replayed schedule and always report the run's
    schedule fingerprint.  Any invariant violation auto-dumps a
    replayable [traces/<scenario>_0x<seed>.sched.jsonl]. *)

val default_root : int64
(** Root of every derived default seed below. *)

val dseed : string -> int64
(** [dseed tag = Rng.derive ~root:default_root tag]. *)

type sched_summary = {
  ss_policy : string;  (** {!Sched.spec_label} of the run's policy *)
  ss_points : int;  (** same-instant choice points encountered *)
  ss_decisions : Sched.decision list;  (** recorded picks, execution order *)
  ss_steps : int;  (** engine events fired *)
  ss_trace_hash : int64;  (** {!Engine.trace_hash} at the end of the run *)
  ss_metrics_hash : int64;  (** {!Sud_obs.Metrics.snapshot_hash} ditto *)
  ss_divergence : string option;  (** strict-replay mismatch, if any *)
  ss_dump : string option;  (** schedule file written on violation *)
}

val pending_sched : sched_summary
(** Placeholder value used while a report is being assembled mid-run. *)

val finish_sched :
  scenario:string ->
  seed:int64 ->
  sched:Sched.spec option ->
  eng:Engine.t ->
  Sched.recorder option ->
  violations:string list ->
  sched_summary
(** Fingerprint a finished run and, when [violations] is non-empty, dump
    the replayable schedule to [traces/].  Shared with {!Proto_fuzz}. *)

(** {1 Soak} *)

type soak_report = {
  sr_seed : int64;
  sr_planned : int;
  sr_applied : int;
  sr_skipped : int;
  sr_by_class : (string * int) list;
  sr_detections : int;
  sr_restarts : int;
  sr_deaths : int;  (** [Driver_killed] events observed *)
  sr_state : Supervisor.state;  (** must be [Running] at the end *)
  sr_offered : int;  (** UDP packets the traffic fiber attempted *)
  sr_sent : int;
  sr_dropped : int;
  sr_wire_frames : int;  (** frames observed on the medium *)
  sr_backlog : Netdev.backlog_stats;
  sr_max_outage_ns : int;  (** worst detection → traffic-restored latency *)
  sr_malformed : int;
      (** malformed uchan slots plus corrupt batch frames dropped, summed
          across every driver generation (each generation has fresh
          counters) *)
  sr_violations : string list;  (** invariant failures; must be [] *)
  sr_sched : sched_summary;
}

val outage_bound_ns : int
(** Any single recovery outage above this is reported as a violation. *)

val soak :
  ?sched:Sched.spec ->
  ?seed:int64 ->
  ?n_faults:int ->
  ?duration_ms:int ->
  ?plan:plan ->
  unit ->
  soak_report
(** Run a supervised honest E1000 with continuous UDP traffic (bursts of
    4, so tx_free downcalls coalesce into multi-frame batch slots) while
    a seeded plan (default 200 faults over 4 s of simulated time) fires
    every fault class at it.  At every driver death the harness asserts:
    the kernel secret page is untouched, the dead generation's grant is
    revoked, the device's IOMMU domain is detached, and no previously
    mapped iova still answers from the IOTLB.  At the end: supervisor
    [Running], backlog accounting exact
    ([offered = queued + dropped + replayed]), every outage bounded, and
    — when any corruption was injected — at least one slot counted
    malformed over the run. *)

(** {1 Per-class recovery latency (bench)} *)

type recovery_sample = {
  rs_fault : string;
  rs_detect_ns : int;  (** last-healthy instant → detection *)
  rs_outage_ns : int;  (** detection → traffic restored *)
}

val measure_recovery : ?seed:int64 -> fault -> recovery_sample
(** Inject exactly one fault of the class into a freshly supervised
    driver under traffic and report the observed latencies. *)

(** {1 Crash loop} *)

type quarantine_report = {
  qr_restarts : int;
  qr_quarantined : bool;
  qr_netdev_removed : bool;
  qr_sysfs_state : string;  (** the device's [sud_state] attribute *)
}

val crash_loop : ?max_restarts:int -> unit -> quarantine_report
(** Kill every fresh driver generation until the restart budget
    (default 3 per window) is exhausted: the supervisor must quarantine
    the device — netdev unregistered, sysfs state ["quarantined"]. *)

(** {1 sud-blk: storage faults and the crash-consistency soak}

    The block soak replaces "traffic keeps flowing" with a stronger
    oracle: {e no acknowledged write is ever lost, and no write is
    observable that was never acknowledged}.  A single synchronous
    workload fiber keeps a per-page [last_acked] ground truth; because
    {!Blkdev.write} blocks until the ack, the array is exact whenever
    the fiber runs, and media is compared against it immediately after
    every successful [fsync] — the one instant the durability contract
    pins everything down.  Every supervised restart forces such a
    check, so the invariant is asserted at every recovery. *)

(** Storage fault classes.  The device-level ones (corrupt/drop
    completion, drop flush) arm one-shot hooks on the emulated NVMe;
    none of them produce a direct detection signal, so all escalate
    through the proxy's per-request timeout into a full recovery —
    every class is lethal.  [Crash_mid_barrier] stalks an in-flight
    flush and kills the driver at that instant. *)
type blk_fault =
  | Bcrash
  | Bhang
  | Corrupt_completion
  | Drop_completion
  | Drop_flush
  | Crash_mid_barrier

val all_blk_faults : blk_fault list
val blk_fault_name : blk_fault -> string

type blk_injection = { bat_ns : int; bfault : blk_fault }
type blk_plan = blk_injection list

val random_blk_plan :
  seed:int64 -> duration_ns:int -> n:int -> ?faults:blk_fault list -> unit -> blk_plan

type blk_world = {
  bw_eng : Engine.t;
  bw_k : Kernel.t;
  bw_sp : Safe_pci.t;
  bw_nvme : Nvme_dev.t;
  bw_bdf : Bus.bdf;
}

val make_blk_world : ?capacity:int -> unit -> blk_world
(** A booted kernel with one emulated NVMe ([capacity] in 512-byte
    sectors — the media is sparse, so large devices are free),
    safe-PCI initialised. *)

val in_blk_world : ?max_ms:int -> blk_world -> (unit -> 'a) -> 'a

val honest_blk_factory : attempt:int -> Driver_api.blk_driver
(** The honest NVMe driver, every generation. *)

val blk_inject :
  eng:Engine.t -> sv:Supervisor.t -> nvme:Nvme_dev.t -> blk_fault -> bool
(** Apply one storage fault now.  Must run in a fiber
    ([Crash_mid_barrier] sleeps while stalking a flush). *)

val run_blk_plan :
  Kernel.t ->
  sv:Supervisor.t ->
  nvme:Nvme_dev.t ->
  ?stats:injector_stats ->
  blk_plan ->
  injector_stats

val install_invariants_for :
  k:Kernel.t -> bdf:Bus.bdf -> Supervisor.t -> secret_addr:int -> invariant_ctx
(** The class-independent form of {!install_invariants}: the same
    containment contract, whether the supervised device is a NIC or an
    NVMe. *)

type blk_soak_report = {
  bsr_seed : int64;
  bsr_planned : int;
  bsr_applied : int;
  bsr_skipped : int;
  bsr_by_class : (string * int) list;
  bsr_detections : int;
  bsr_restarts : int;
  bsr_deaths : int;
  bsr_state : Supervisor.state;  (** must be [Running] at the end *)
  bsr_writes : int;  (** acknowledged page writes *)
  bsr_reads : int;
  bsr_fsyncs : int;
  bsr_verifies : int;  (** full media-vs-last-acked sweeps performed *)
  bsr_io_errors : int;
  bsr_max_outage_ns : int;
  bsr_retained_end : int;  (** unflushed retention after the final fsync; must be 0 *)
  bsr_inflight_end : int;  (** in-flight requests after the final fsync; must be 0 *)
  bsr_by_reason : (string * int) list;
      (** supervisor detection reasons, most frequent first *)
  bsr_violations : string list;  (** must be [] *)
  bsr_sched : sched_summary;
}

val blk_soak :
  ?sched:Sched.spec ->
  ?seed:int64 ->
  ?n_faults:int ->
  ?duration_ms:int ->
  ?plan:blk_plan ->
  unit ->
  blk_soak_report
(** Run a supervised honest NVMe driver under a continuous synchronous
    write/read/fsync workload while a seeded plan (default 200 storage
    faults over 6 s of simulated time) fires every class at it.  At
    every driver death the containment invariants hold; after every
    recovery and every periodic fsync, media equals the last
    acknowledged write for every page; at the end a final fsync must
    leave zero retained and zero in-flight requests. *)

val measure_blk_recovery : ?seed:int64 -> blk_fault -> recovery_sample
(** Inject exactly one storage fault into a freshly supervised NVMe
    under workload and report the observed recovery latencies
    ([rs_fault] is prefixed ["blk_"]). *)

(** {1 Warm standby: upgrades, poison, and the interleaving soak}

    The classes here target the generation-swap machinery itself rather
    than the datapath, so they are deliberately {e not} part of
    {!all_blk_faults}: neither produces the fault-detection /
    [Driver_restarted] shape {!measure_blk_recovery} waits on. *)

type upgrade_fault =
  | Upgrade_during_fault  (** a lethal fault racing the upgrade drain *)
  | Standby_poisoned
      (** the parked generation is killed while warm; it must be
          discarded and rebuilt, never swapped in *)

val all_upgrade_faults : upgrade_fault list
val upgrade_fault_name : upgrade_fault -> string

val inject_standby_poison : sv:Supervisor.t -> bool
(** Kill the parked standby generation's process, if one is warm.
    Returns whether the poison was applied.  Detection happens at the
    supervisor's next probe (watchdog tick, [ensure], or the take at
    swap time) — never by installing the corpse. *)

val wait_standby_ready : eng:Engine.t -> Supervisor.t -> budget_ms:int -> bool
val wait_running : eng:Engine.t -> Supervisor.t -> budget_ms:int -> bool

type upgrade_soak_report = {
  usr_seed : int64;
  usr_interleavings : int;
  usr_upgrades : int;       (** live upgrades completed *)
  usr_warm_swaps : int;     (** recoveries served by the warm standby *)
  usr_cold_restarts : int;  (** recoveries that fell back to a cold start *)
  usr_poisoned : int;       (** standby slots discarded as poisoned *)
  usr_writes : int;
  usr_fsyncs : int;
  usr_verifies : int;
  usr_io_errors : int;
  usr_state : Supervisor.state;
  usr_violations : string list;  (** must be [] *)
  usr_sched : sched_summary;
}

val upgrade_soak :
  ?sched:Sched.spec -> ?seed:int64 -> ?interleavings:int -> unit -> upgrade_soak_report
(** Run a warm-standby supervised NVMe under the crash-consistency
    workload while a seeded schedule (default 20 interleavings)
    mixes live upgrades, administrative failovers, lethal faults with a
    warm slot, timeout-escalated device faults, poisoned standbys, and
    crashes racing the upgrade drain.  After every interleaving the
    supervisor must return to Running and media must equal the last
    acknowledged write for every page. *)

val measure_warm_blk_recovery : ?seed:int64 -> blk_fault -> recovery_sample
(** {!measure_blk_recovery} with the warm standby enabled: waits for
    the parked generation to be Ready before injecting, then requires
    the recovery to have taken the warm-swap path (fails if it fell
    back to a cold start). *)
