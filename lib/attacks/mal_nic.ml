module R = E1000_dev.Regs

type toolkit = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  cb : Driver_api.net_callbacks;
  mmio : Driver_api.mmio;
  ring : Driver_api.dma_region;
  buf : Driver_api.dma_region;
}

let reg_write t off v = t.mmio.Driver_api.mmio_write ~off ~size:4 v
let reg_read t off = t.mmio.Driver_api.mmio_read ~off ~size:4

let write_desc t slot ~addr ~len ~cmd =
  let off = slot * R.desc_size in
  Driver_api.dma_set64 t.ring ~off (Int64.of_int addr);
  let meta = Bytes.make 8 '\000' in
  Bytes.set_uint16_le meta 0 len;
  Bytes.set meta 3 (Char.chr cmd);
  t.ring.Driver_api.dma_write ~off:(off + 8) meta

let dma_read_via_tx t ~target ~len =
  write_desc t 0 ~addr:target ~len ~cmd:(R.txd_cmd_eop lor R.txd_cmd_rs);
  reg_write t R.tdbal (t.ring.Driver_api.dma_addr land 0xFFFFFFFF);
  reg_write t R.tdbah (t.ring.Driver_api.dma_addr lsr 32);
  reg_write t R.tdlen (16 * R.desc_size);
  reg_write t R.tdh 0;
  reg_write t R.tctl R.tctl_en;
  reg_write t R.tdt 1

let dma_write_via_rx t ~target =
  (* Aim every descriptor at the target so a whole burst of incoming
     frames keeps hammering it. *)
  for slot = 0 to 14 do
    write_desc t slot ~addr:target ~len:0 ~cmd:0
  done;
  reg_write t R.rdbal (t.ring.Driver_api.dma_addr land 0xFFFFFFFF);
  reg_write t R.rdbah (t.ring.Driver_api.dma_addr lsr 32);
  reg_write t R.rdlen (16 * R.desc_size);
  reg_write t R.rdh 0;
  reg_write t R.rdt 15;
  reg_write t R.rctl R.rctl_en

let driver ?(name = "mal-e1000") ~on_open () =
  let probe env pdev cb =
    match pdev.Driver_api.pd_enable () with
    | Error e -> Error e
    | Ok () ->
      (match pdev.Driver_api.pd_map_bar 0 with
       | Error e -> Error e
       | Ok mmio ->
         (match
            ( pdev.Driver_api.pd_alloc_dma ~bytes:4096 (),
              pdev.Driver_api.pd_alloc_dma ~bytes:4096 () )
          with
          | Ok ring, Ok buf ->
            let t = { env; pdev; cb; mmio; ring; buf } in
            Ok
              { Driver_api.ni_mac = Bytes.of_string "\x02\xBA\xD0\x00\x00\x01";
                ni_tx_queues = 1;
                ni_open = (fun () -> on_open t);
                ni_stop = (fun () -> ());
                ni_xmit = (fun ~queue:_ _ -> `Ok);
                ni_ioctl = (fun ~cmd:_ ~arg:_ -> Error "nope") }
          | Error e, _ | _, Error e -> Error e))
  in
  { Driver_api.nd_name = name; nd_ids = [ (0x8086, 0x10D3) ]; nd_probe = probe }
