(* sudctl — command-line front end to the SUD reproduction.

     sudctl security [--attack NAME]    run attack scenarios
     sudctl netperf [--test NAME]       run Figure 8 benchmarks
     sudctl mappings                    print Figure 9
     sudctl files                       print Figure 6
     sudctl protocol                    print Figure 7 *)

open Cmdliner

let run_security attack =
  let all = Scenarios.all () in
  let chosen =
    match attack with
    | None -> all
    | Some name ->
      List.filter
        (fun o ->
           let lower = String.lowercase_ascii o.Scenarios.attack in
           let pat = String.lowercase_ascii name in
           let n = String.length lower and m = String.length pat in
           let rec scan i = i + m <= n && (String.sub lower i m = pat || scan (i + 1)) in
           m > 0 && scan 0)
        all
  in
  if chosen = [] then begin
    Printf.eprintf "no attack matches %s\n"
      (match attack with Some a -> a | None -> "");
    exit 1
  end;
  List.iter
    (fun o ->
       Printf.printf "%-44s %-36s %s\n    %s\n" o.Scenarios.attack o.Scenarios.config
         (if o.Scenarios.contained then "contained" else "NOT CONTAINED")
         o.Scenarios.evidence)
    chosen

let run_netperf test =
  let benches =
    [ ("tcp_stream", ("TCP_STREAM", fun m -> Netperf.tcp_stream m));
      ("udp_tx", ("UDP_STREAM TX", fun m -> Netperf.udp_stream_tx m));
      ("udp_rx", ("UDP_STREAM RX", fun m -> Netperf.udp_stream_rx m));
      ("udp_rr", ("UDP_RR", fun m -> Netperf.udp_rr m)) ]
  in
  let chosen =
    match test with
    | None -> benches
    | Some t ->
      (match List.assoc_opt t benches with
       | Some b -> [ (t, b) ]
       | None ->
         Printf.eprintf "unknown test %s (tcp_stream|udp_tx|udp_rx|udp_rr)\n" t;
         exit 1)
  in
  List.iter
    (fun (_, (name, bench)) ->
       List.iter
         (fun mode ->
            let r = bench mode in
            Printf.printf "%-16s %-18s %10.0f %-14s %5.1f%% CPU (%d samples)\n" name
              (Netperf.mode_name mode) r.Netperf.throughput r.Netperf.units r.Netperf.cpu_pct
              r.Netperf.samples)
         [ Netperf.Kernel_driver; Netperf.Sud_driver ])
    chosen

let run_mappings () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 '\x02') ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"m" (fun () ->
         let sp = Safe_pci.init k in
         match Driver_host.start_net k sp ~bdf E1000.driver with
         | Error e -> prerr_endline e
         | Ok s ->
           Printf.printf "%-12s %-12s %-10s %s\n" "IOVA" "Phys" "Size" "Writable";
           List.iter
             (fun (iova, phys, len, w) ->
                Printf.printf "0x%08X   0x%08X   %-10s %b\n" iova phys
                  (Printf.sprintf "%dK" (len / 1024)) w)
             (Safe_pci.iommu_mappings (Driver_host.grant s)))
     : Fiber.t);
  Engine.run ~max_time:1_000_000_000 eng

let run_files () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 '\x02') ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  let sp = Safe_pci.init k in
  Safe_pci.register_device sp bdf;
  List.iter print_endline (Safe_pci.device_files sp bdf)

let run_protocol () =
  Printf.printf "%-22s %-10s %s\n" "Call" "Direction" "Description";
  List.iter
    (fun (n, d, desc) -> Printf.printf "%-22s %-10s %s\n" n d desc)
    Proxy_proto.figure7_sample

let attack_arg =
  Arg.(value & opt (some string) None & info [ "attack" ] ~docv:"NAME"
         ~doc:"Run only attacks whose name contains $(docv).")

let test_arg =
  Arg.(value & opt (some string) None & info [ "test" ] ~docv:"NAME"
         ~doc:"One of tcp_stream, udp_tx, udp_rx, udp_rr.")

let security_cmd =
  Cmd.v (Cmd.info "security" ~doc:"Run the 5.2 attack scenarios")
    Term.(const run_security $ attack_arg)

let netperf_cmd =
  Cmd.v (Cmd.info "netperf" ~doc:"Run the Figure 8 benchmarks")
    Term.(const run_netperf $ test_arg)

let mappings_cmd =
  Cmd.v (Cmd.info "mappings" ~doc:"Print the e1000 driver's IOMMU mappings (Figure 9)")
    Term.(const run_mappings $ const ())

let files_cmd =
  Cmd.v (Cmd.info "files" ~doc:"Print the sud device files (Figure 6)")
    Term.(const run_files $ const ())

let protocol_cmd =
  Cmd.v (Cmd.info "protocol" ~doc:"Print the upcall/downcall table (Figure 7)")
    Term.(const run_protocol $ const ())

let () =
  let info = Cmd.info "sudctl" ~version:"1.0" ~doc:"Drive the SUD reproduction" in
  exit
    (Cmd.eval
       (Cmd.group info [ security_cmd; netperf_cmd; mappings_cmd; files_cmd; protocol_cmd ]))
