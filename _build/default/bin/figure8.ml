(* Standalone regeneration of Figure 8. *)
let () =
  Printf.printf "%-16s %-18s %-22s %s\n" "Test" "Driver" "Throughput" "CPU %";
  List.iter
    (fun r ->
       Printf.printf "%-16s %-18s %-22s %s\n" r.Netperf.test r.Netperf.driver
         r.Netperf.value r.Netperf.cpu)
    (Netperf.figure8 ())
