(** ne2k-pci driver: the programmed-IO contrast case.

    Everything — MAC PROM, packet data, ring pointers — moves through
    legacy IO ports, so under SUD this driver is confined purely by the
    IO-permission bitmap and needs only a single bounce DMA region for
    handing received frames to the stack.  Its IOMMU page table stays
    almost empty (compare Figure 9). *)

val driver : Driver_api.net_driver
