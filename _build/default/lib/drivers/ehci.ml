module R = Usb_hci_dev.Regs

type state = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  mmio : Driver_api.mmio;
  sched : Driver_api.dma_region;    (* QH + qTD + transfer buffer arena *)
  xfer_lock : Sync.Mutex.t;         (* one transfer on the schedule at a time *)
  mutable next_addr : int;          (* next USB device address to assign *)
}

let r32 st off = st.mmio.Driver_api.mmio_read ~off ~size:4
let w32 st off v = st.mmio.Driver_api.mmio_write ~off ~size:4 v

(* Schedule arena layout: one QH at 0, one qTD at 64, buffer at 128. *)
let qh_off = 0
let qtd_off = 64
let buf_off = 128
let buf_max = 3968

let submit st ~devaddr ~ep ~ep_type ~dir ~data ~len =
  if len > buf_max then Error "transfer too large"
  else Sync.Mutex.with_lock st.xfer_lock @@ fun () -> begin
    let base = st.sched.Driver_api.dma_addr in
    (match data with
     | Some d -> st.sched.Driver_api.dma_write ~off:buf_off d
     | None -> ());
    (* qTD *)
    Driver_api.dma_set64 st.sched ~off:qtd_off 0L;
    let flags = Bytes.make 8 '\000' in
    Bytes.set flags 0 (Char.chr (R.qtd_active lor R.qtd_ioc));
    st.sched.Driver_api.dma_write ~off:(qtd_off + 8) flags;
    Driver_api.dma_set32 st.sched ~off:(qtd_off + 12) len;
    Driver_api.dma_set64 st.sched ~off:(qtd_off + 16) (Int64.of_int (base + buf_off));
    Driver_api.dma_set32 st.sched ~off:(qtd_off + 24) 0;
    (* QH *)
    Driver_api.dma_set64 st.sched ~off:qh_off 0L;
    let hdr = Bytes.make 8 '\000' in
    Bytes.set hdr 0 (Char.chr devaddr);
    Bytes.set hdr 1 (Char.chr ep);
    Bytes.set hdr 2 (Char.chr ep_type);
    Bytes.set hdr 3 (Char.chr dir);
    st.sched.Driver_api.dma_write ~off:(qh_off + 8) hdr;
    Driver_api.dma_set64 st.sched ~off:(qh_off + 16) (Int64.of_int (base + qtd_off));
    w32 st R.asynclistaddr (base + qh_off);
    w32 st R.usbcmd R.cmd_run;
    (* Poll for completion: the HC visits the schedule every microframe.
       Interrupt IN endpoints NAK while idle, so those get a short bound
       rather than a long one. *)
    let tries = if ep_type = R.ep_type_interrupt then 4 else 64 in
    let rec poll n =
      let flags = Char.code (Bytes.get (st.sched.Driver_api.dma_read ~off:(qtd_off + 8) ~len:1) 0) in
      if flags land R.qtd_active = 0 then begin
        let status = Char.code (Bytes.get (st.sched.Driver_api.dma_read ~off:(qtd_off + 9) ~len:1) 0) in
        let actual = Driver_api.dma_get32 st.sched ~off:(qtd_off + 24) in
        if status = 0 then Ok actual else Error (Printf.sprintf "stall (status %d)" status)
      end
      else if n = 0 then begin
        (* Give up: take the still-active qTD off the schedule, or the HC
           would complete it later into a buffer nobody reads (and eat a
           keyboard report with it).  Re-check once in case it completed
           between our last look and the removal. *)
        w32 st R.asynclistaddr 0;
        let flags =
          Char.code (Bytes.get (st.sched.Driver_api.dma_read ~off:(qtd_off + 8) ~len:1) 0)
        in
        if flags land R.qtd_active = 0 then poll 1 else Error "transfer timed out (NAK)"
      end
      else begin
        st.env.Driver_api.env_msleep 1;
        poll (n - 1)
      end
    in
    poll tries
  end

let read_back st len = st.sched.Driver_api.dma_read ~off:buf_off ~len

(* Submit + copy the completion data out while still holding no lock gap:
   the buffer is only valid until the next transfer reuses the arena, so
   grab it immediately. *)
let submit_in st ~devaddr ~ep ~ep_type ~data ~len ~skip =
  match submit st ~devaddr ~ep ~ep_type ~dir:1 ~data ~len with
  | Error e -> Error e
  | Ok actual -> Ok (Bytes.sub (read_back st (skip + actual)) skip actual)

let control st ~devaddr ~setup ~dir_in ~len =
  if Bytes.length setup <> 8 then Error "setup must be 8 bytes"
  else begin
    let total = 8 + len in
    match submit st ~devaddr ~ep:0 ~ep_type:R.ep_type_control ~dir:0 ~data:(Some setup) ~len:total with
    | Error e -> Error e
    | Ok actual ->
      if dir_in && actual > 0 then
        Ok (Bytes.sub (read_back st (8 + actual)) 8 actual)
      else Ok Bytes.empty
  end

let setup_packet ~req_type ~request ~value ~index ~length =
  let s = Bytes.create 8 in
  Bytes.set s 0 (Char.chr req_type);
  Bytes.set s 1 (Char.chr request);
  Bytes.set_uint16_le s 2 value;
  Bytes.set_uint16_le s 4 index;
  Bytes.set_uint16_le s 6 length;
  s

let make_handle st ~address ~cls =
  { Driver_api.ud_address = address;
    ud_class = cls;
    ud_control =
      (fun ~setup ~dir_in ~len -> control st ~devaddr:address ~setup ~dir_in ~len);
    ud_bulk_out =
      (fun ~ep data ->
         match
           submit st ~devaddr:address ~ep ~ep_type:R.ep_type_bulk ~dir:0 ~data:(Some data)
             ~len:(Bytes.length data)
         with
         | Ok _ -> Ok ()
         | Error e -> Error e);
    ud_bulk_in =
      (fun ~ep ~len ->
         submit_in st ~devaddr:address ~ep ~ep_type:R.ep_type_bulk ~data:None ~len ~skip:0);
    ud_interrupt_in =
      (fun ~ep ~len ->
         match
           submit_in st ~devaddr:address ~ep ~ep_type:R.ep_type_interrupt ~data:None ~len ~skip:0
         with
         | Ok report -> Ok (Some report)
         | Error "transfer timed out (NAK)" -> Ok None
         | Error e -> Error e) }

let enumerate st () =
  let nports = 2 in
  let handles = ref [] in
  for port = 0 to nports - 1 do
    let sc = r32 st (R.portsc0 + (4 * port)) in
    if sc land R.portsc_connect <> 0 then begin
      (* Reset the port: the device answers at address 0. *)
      w32 st (R.portsc0 + (4 * port)) (sc lor R.portsc_reset);
      st.env.Driver_api.env_msleep 10;
      let address = st.next_addr in
      st.next_addr <- st.next_addr + 1;
      let set_addr = setup_packet ~req_type:0x00 ~request:0x05 ~value:address ~index:0 ~length:0 in
      match control st ~devaddr:0 ~setup:set_addr ~dir_in:false ~len:0 with
      | Error e -> st.env.Driver_api.env_printk (Printf.sprintf "port %d: set_address: %s" port e)
      | Ok _ ->
        let get_desc =
          setup_packet ~req_type:0x80 ~request:0x06 ~value:0x0100 ~index:0 ~length:18
        in
        (match control st ~devaddr:address ~setup:get_desc ~dir_in:true ~len:18 with
         | Error e ->
           st.env.Driver_api.env_printk (Printf.sprintf "port %d: get_descriptor: %s" port e)
         | Ok d when Bytes.length d >= 18 ->
           let cls = Char.code (Bytes.get d 4) in
           let set_cfg = setup_packet ~req_type:0x00 ~request:0x09 ~value:1 ~index:0 ~length:0 in
           ignore (control st ~devaddr:address ~setup:set_cfg ~dir_in:false ~len:0
                   : (bytes, string) result);
           handles := make_handle st ~address ~cls :: !handles
         | Ok _ -> st.env.Driver_api.env_printk "short device descriptor")
    end
  done;
  Ok (List.rev !handles)

let probe env pdev =
  match pdev.Driver_api.pd_enable () with
  | Error e -> Error ("enable: " ^ e)
  | Ok () ->
    (match pdev.Driver_api.pd_map_bar 0 with
     | Error e -> Error ("map BAR0: " ^ e)
     | Ok mmio ->
       (match pdev.Driver_api.pd_alloc_dma ~bytes:Bus.page_size () with
        | Error e -> Error ("schedule arena: " ^ e)
        | Ok sched ->
          let st = { env; pdev; mmio; sched; xfer_lock = Sync.Mutex.create (); next_addr = 1 } in
          w32 st R.usbcmd R.cmd_run;
          Ok { Driver_api.uh_enumerate = (fun () -> enumerate st ()) }))

let driver =
  { Driver_api.ud_name = "ehci-hcd"; ud_ids = [ (0x8086, 0x293A) ]; ud_probe = probe }

(* ---- class drivers ---- *)

let block_size = 512

let cbw ~tag ~dlen ~dir_in ~cb =
  let b = Bytes.make 31 '\000' in
  Bytes.set_int32_le b 0 0x43425355l;  (* 'USBC' *)
  Bytes.set_int32_le b 4 (Int32.of_int tag);
  Bytes.set_int32_le b 8 (Int32.of_int dlen);
  Bytes.set b 12 (if dir_in then '\x80' else '\x00');
  Bytes.set b 14 (Char.chr (Bytes.length cb));
  Bytes.blit cb 0 b 15 (Bytes.length cb);
  b

let bind_storage (ud : Driver_api.usb_dev_handle) =
  if ud.Driver_api.ud_class <> 0x08 then Error "not a mass-storage device"
  else begin
    let tag = ref 0 in
    let scsi ~cb ~dlen ~dir_in ~out_data =
      incr tag;
      match ud.Driver_api.ud_bulk_out ~ep:1 (cbw ~tag:!tag ~dlen ~dir_in ~cb) with
      | Error e -> Error ("CBW: " ^ e)
      | Ok () ->
        let data =
          if dir_in && dlen > 0 then ud.Driver_api.ud_bulk_in ~ep:2 ~len:dlen
          else if (not dir_in) && dlen > 0 then
            match ud.Driver_api.ud_bulk_out ~ep:1 out_data with
            | Ok () -> Ok Bytes.empty
            | Error e -> Error e
          else Ok Bytes.empty
        in
        (match data with
         | Error e -> Error ("data: " ^ e)
         | Ok payload ->
           (match ud.Driver_api.ud_bulk_in ~ep:2 ~len:13 with
            | Error e -> Error ("CSW: " ^ e)
            | Ok csw when Bytes.length csw = 13 && Bytes.get csw 12 = '\000' -> Ok payload
            | Ok _ -> Error "SCSI command failed"))
    in
    (* READ CAPACITY(10) *)
    let cap_cb = Bytes.make 10 '\000' in
    Bytes.set cap_cb 0 '\x25';
    match scsi ~cb:cap_cb ~dlen:8 ~dir_in:true ~out_data:Bytes.empty with
    | Error e -> Error ("read capacity: " ^ e)
    | Ok d when Bytes.length d = 8 ->
      let last_lba = Int32.to_int (Bytes.get_int32_be d 0) in
      let capacity = last_lba + 1 in
      Ok
        { Driver_api.bl_capacity = (fun () -> capacity);
          bl_read =
            (fun ~lba ~count ->
               if lba < 0 || count <= 0 || lba + count > capacity then Error "bad LBA range"
               else begin
                 let cb = Bytes.make 10 '\000' in
                 Bytes.set cb 0 '\x28';
                 Bytes.set_int32_be cb 2 (Int32.of_int lba);
                 Bytes.set_uint16_be cb 7 count;
                 scsi ~cb ~dlen:(count * block_size) ~dir_in:true ~out_data:Bytes.empty
               end);
          bl_write =
            (fun ~lba data ->
               let count = Bytes.length data / block_size in
               if count = 0 || Bytes.length data mod block_size <> 0 then
                 Error "write must be whole blocks"
               else if lba < 0 || lba + count > capacity then Error "bad LBA range"
               else begin
                 let cb = Bytes.make 10 '\000' in
                 Bytes.set cb 0 '\x2A';
                 Bytes.set_int32_be cb 2 (Int32.of_int lba);
                 Bytes.set_uint16_be cb 7 count;
                 match scsi ~cb ~dlen:(Bytes.length data) ~dir_in:false ~out_data:data with
                 | Ok _ -> Ok ()
                 | Error e -> Error e
               end) }
    | Ok _ -> Error "short READ CAPACITY response"
  end

let poll_keyboard env (ud : Driver_api.usb_dev_handle) (icb : Driver_api.input_callbacks) =
  env.Driver_api.env_spawn ~name:"usb-kbd-poll" (fun () ->
      let rec loop () =
        (match ud.Driver_api.ud_interrupt_in ~ep:1 ~len:8 with
         | Ok (Some report) when Bytes.length report >= 3 ->
           let key = Char.code (Bytes.get report 2) in
           if key <> 0 then icb.Driver_api.ic_key key
         | Ok (Some _) | Ok None -> ()
         | Error _ -> ());
        env.Driver_api.env_msleep 8;
        loop ()
      in
      loop ())
