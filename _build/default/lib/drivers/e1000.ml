module R = E1000_dev.Regs

let tx_ring_size = 256          (* 256 * 16B = one page of descriptors *)
let rx_ring_size = 512          (* two pages, as in Figure 9 *)
let rx_buf_size = 2048

type state = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  cb : Driver_api.net_callbacks;
  mmio : Driver_api.mmio;
  tx_ring : Driver_api.dma_region;
  rx_ring : Driver_api.dma_region;
  rx_bufs : Driver_api.dma_region;
  tokens : int array;                  (* txb tokens by TX slot *)
  mutable tx_tail : int;
  mutable tx_clean : int;
  mutable rx_next : int;
  mutable opened : bool;
  mutable irq_seen : bool;             (* for the open-time interrupt self test *)
}

let r32 st off = st.mmio.Driver_api.mmio_read ~off ~size:4
let w32 st off v = st.mmio.Driver_api.mmio_write ~off ~size:4 v

let read_eeprom st addr =
  w32 st R.eerd ((addr lsl 8) lor R.eerd_start);
  let rec poll tries =
    let v = r32 st R.eerd in
    if v land R.eerd_done <> 0 then (v lsr 16) land 0xFFFF
    else if tries = 0 then 0
    else begin
      st.env.Driver_api.env_udelay 1;
      poll (tries - 1)
    end
  in
  poll 100

let read_mac st =
  let mac = Bytes.create 6 in
  for i = 0 to 2 do
    let w = read_eeprom st i in
    Bytes.set mac (2 * i) (Char.chr (w land 0xff));
    Bytes.set mac ((2 * i) + 1) (Char.chr ((w lsr 8) land 0xff))
  done;
  mac

(* Legacy descriptor accessors *)
let write_tx_desc st slot ~addr ~len ~cmd =
  let off = slot * R.desc_size in
  Driver_api.dma_set64 st.tx_ring ~off (Int64.of_int addr);
  let meta = Bytes.make 8 '\000' in
  Bytes.set_uint16_le meta 0 len;
  Bytes.set meta 3 (Char.chr cmd);
  Bytes.set meta 4 '\000';              (* status *)
  st.tx_ring.Driver_api.dma_write ~off:(off + 8) meta

let tx_desc_done st slot =
  let off = (slot * R.desc_size) + 12 in
  let b = st.tx_ring.Driver_api.dma_read ~off ~len:1 in
  Char.code (Bytes.get b 0) land R.txd_sta_dd <> 0

let setup_rx_desc st slot =
  let off = slot * R.desc_size in
  let buf_addr = st.rx_bufs.Driver_api.dma_addr + (slot * rx_buf_size) in
  Driver_api.dma_set64 st.rx_ring ~off (Int64.of_int buf_addr);
  st.rx_ring.Driver_api.dma_write ~off:(off + 8) (Bytes.make 8 '\000')

let rx_desc_status st slot =
  let off = (slot * R.desc_size) + 12 in
  Char.code (Bytes.get (st.rx_ring.Driver_api.dma_read ~off ~len:1) 0)

let rx_desc_len st slot =
  let off = (slot * R.desc_size) + 8 in
  Bytes.get_uint16_le (st.rx_ring.Driver_api.dma_read ~off ~len:2) 0

(* ---- interrupt handler (the driver's top half) ---- *)

let clean_tx st =
  let cleaned = ref false in
  while st.tx_clean <> st.tx_tail && tx_desc_done st st.tx_clean do
    st.cb.Driver_api.nc_tx_free ~token:st.tokens.(st.tx_clean);
    st.tokens.(st.tx_clean) <- -1;
    st.tx_clean <- (st.tx_clean + 1) mod tx_ring_size;
    cleaned := true
  done;
  if !cleaned then st.cb.Driver_api.nc_tx_done ()

let rx_poll st =
  let budget = ref 64 in
  let progress = ref true in
  let last = ref (-1) in
  while !progress && !budget > 0 do
    let status = rx_desc_status st st.rx_next in
    if status land R.rxd_sta_dd <> 0 then begin
      let len = rx_desc_len st st.rx_next in
      let addr = st.rx_bufs.Driver_api.dma_addr + (st.rx_next * rx_buf_size) in
      st.env.Driver_api.env_consume 300;
      st.cb.Driver_api.nc_rx ~addr ~len;
      setup_rx_desc st st.rx_next;
      last := st.rx_next;
      st.rx_next <- (st.rx_next + 1) mod rx_ring_size;
      decr budget
    end
    else progress := false
  done;
  (* Hand the recycled descriptors back in one tail write per batch. *)
  if !last >= 0 then w32 st R.rdt !last

let irq_handler st () =
  st.irq_seen <- true;
  let icr = r32 st R.icr in
  if icr land R.int_txdw <> 0 then clean_tx st;
  if icr land R.int_rxt0 <> 0 then rx_poll st;
  if icr land R.int_lsc <> 0 then
    st.cb.Driver_api.nc_carrier (r32 st R.status land R.status_lu <> 0);
  st.pdev.Driver_api.pd_irq_ack ()

(* ---- net_instance callbacks ---- *)

let do_open st () =
  if st.opened then Ok ()
  else begin
    match st.pdev.Driver_api.pd_request_irq (fun () -> irq_handler st ()) with
    | Error e -> Error ("request_irq: " ^ e)
    | Ok () ->
      (* Program the rings. *)
      w32 st R.tdbal (st.tx_ring.Driver_api.dma_addr land 0xFFFFFFFF);
      w32 st R.tdbah (st.tx_ring.Driver_api.dma_addr lsr 32);
      w32 st R.tdlen (tx_ring_size * R.desc_size);
      w32 st R.tdh 0;
      w32 st R.tdt 0;
      st.tx_tail <- 0;
      st.tx_clean <- 0;
      for i = 0 to rx_ring_size - 1 do setup_rx_desc st i done;
      w32 st R.rdbal (st.rx_ring.Driver_api.dma_addr land 0xFFFFFFFF);
      w32 st R.rdbah (st.rx_ring.Driver_api.dma_addr lsr 32);
      w32 st R.rdlen (rx_ring_size * R.desc_size);
      w32 st R.rdh 0;
      w32 st R.rdt (rx_ring_size - 1);
      st.rx_next <- 0;
      (* Interrupt moderation, as the real driver's default ITR: ~50 us
         between interrupts (196 * 256 ns). *)
      w32 st R.itr 196;
      w32 st R.ims (R.int_txdw lor R.int_rxt0 lor R.int_lsc);
      (* Like the real e1000e (paper §4.2): verify the interrupt path by
         raising one and sleeping — which only works if something keeps
         dispatching interrupts while we block. *)
      st.irq_seen <- false;
      w32 st R.ics R.int_txdw;
      let rec wait_irq tries =
        if st.irq_seen then Ok ()
        else if tries = 0 then Error "interrupt self-test failed"
        else begin
          st.env.Driver_api.env_msleep 1;
          wait_irq (tries - 1)
        end
      in
      (match wait_irq 10 with
       | Error e ->
         st.pdev.Driver_api.pd_free_irq ();
         Error e
       | Ok () ->
         w32 st R.rctl R.rctl_en;
         w32 st R.tctl R.tctl_en;
         st.opened <- true;
         st.cb.Driver_api.nc_carrier (r32 st R.status land R.status_lu <> 0);
         Ok ())
  end

let do_stop st () =
  if st.opened then begin
    w32 st R.rctl 0;
    w32 st R.tctl 0;
    w32 st R.imc 0xFFFFFFFF;
    st.pdev.Driver_api.pd_free_irq ();
    st.opened <- false
  end

let do_xmit st (txb : Driver_api.txbuf) =
  let next = (st.tx_tail + 1) mod tx_ring_size in
  if next = st.tx_clean then `Busy     (* ring full *)
  else begin
    st.env.Driver_api.env_consume 350;
    write_tx_desc st st.tx_tail ~addr:txb.Driver_api.txb_addr ~len:txb.Driver_api.txb_len
      ~cmd:(R.txd_cmd_eop lor R.txd_cmd_rs);
    st.tokens.(st.tx_tail) <- txb.Driver_api.txb_token;
    st.tx_tail <- next;
    w32 st R.tdt st.tx_tail;
    `Ok
  end

let do_ioctl st ~cmd ~arg =
  ignore arg;
  if cmd = Netdev.ioctl_mii_status then
    Ok (if r32 st R.status land R.status_lu <> 0 then 1 else 0)
  else if cmd = Netdev.ioctl_link_speed then Ok 1000
  else Error "unsupported ioctl"

let probe env pdev cb =
  match pdev.Driver_api.pd_enable () with
  | Error e -> Error ("enable: " ^ e)
  | Ok () ->
    (match pdev.Driver_api.pd_map_bar 0 with
     | Error e -> Error ("map BAR0: " ^ e)
     | Ok mmio ->
       let alloc what bytes =
         match pdev.Driver_api.pd_alloc_dma ~bytes () with
         | Ok r -> r
         | Error e -> failwith (what ^ ": " ^ e)
       in
       (match
          (* Allocation order matches Figure 9: TX ring, RX ring, buffers. *)
          let tx_ring = alloc "tx ring" (tx_ring_size * R.desc_size) in
          let rx_ring = alloc "rx ring" (rx_ring_size * R.desc_size) in
          let rx_bufs = alloc "rx buffers" (rx_ring_size * rx_buf_size) in
          (tx_ring, rx_ring, rx_bufs)
        with
        | exception Failure e -> Error e
        | tx_ring, rx_ring, rx_bufs ->
          let st =
            { env;
              pdev;
              cb;
              mmio;
              tx_ring;
              rx_ring;
              rx_bufs;
              tokens = Array.make tx_ring_size (-1);
              tx_tail = 0;
              tx_clean = 0;
              rx_next = 0;
              opened = false;
              irq_seen = false }
          in
          let mac = read_mac st in
          env.Driver_api.env_printk
            (Printf.sprintf "e1000: MAC %02x:%02x:%02x:%02x:%02x:%02x"
               (Char.code (Bytes.get mac 0)) (Char.code (Bytes.get mac 1))
               (Char.code (Bytes.get mac 2)) (Char.code (Bytes.get mac 3))
               (Char.code (Bytes.get mac 4)) (Char.code (Bytes.get mac 5)));
          Ok
            { Driver_api.ni_mac = mac;
              ni_open = (fun () -> do_open st ());
              ni_stop = (fun () -> do_stop st ());
              ni_xmit = (fun txb -> do_xmit st txb);
              ni_ioctl = (fun ~cmd ~arg -> do_ioctl st ~cmd ~arg) }))

let driver =
  { Driver_api.nd_name = "e1000";
    nd_ids = [ (0x8086, 0x10D3) ];
    nd_probe = probe }
