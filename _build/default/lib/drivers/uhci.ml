module R = Uhci_dev.Regs

type state = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  io : Driver_api.pio;
  frames : Driver_api.dma_region;   (* 1024-entry frame list *)
  tds : Driver_api.dma_region;      (* TD + buffer arena *)
  xfer_lock : Sync.Mutex.t;
  mutable next_addr : int;
}

let outw st off v = st.io.Driver_api.pio_write ~off ~size:2 v
let inw st off = st.io.Driver_api.pio_read ~off ~size:2

let td_off = 0
let buf_off = 64
let buf_max = 3968

(* Arm one TD in every frame-list slot so the HC finds it at the very next
   frame, run it to completion, then unlink. *)
let submit st ~pid ~devaddr ~ep ~data ~len =
  if len > buf_max then Error "transfer too large"
  else Sync.Mutex.with_lock st.xfer_lock @@ fun () ->
    (match data with
     | Some d -> st.tds.Driver_api.dma_write ~off:buf_off d
     | None -> ());
    let base = st.tds.Driver_api.dma_addr in
    let td = Bytes.make R.td_size '\000' in
    Bytes.set_int32_le td 0 (Int32.of_int R.lp_terminate);
    Bytes.set_int32_le td 4 (Int32.of_int (R.td_active lor R.td_ioc));
    Bytes.set_int32_le td 8
      (Int32.of_int (pid lor (devaddr lsl 8) lor (ep lsl 15) lor (len lsl 21)));
    Bytes.set_int32_le td 12 (Int32.of_int (base + buf_off));
    st.tds.Driver_api.dma_write ~off:td_off td;
    let slot_entry = Bytes.create 4 in
    Bytes.set_int32_le slot_entry 0 (Int32.of_int (base + td_off));
    for i = 0 to R.frame_entries - 1 do
      st.frames.Driver_api.dma_write ~off:(4 * i) slot_entry
    done;
    let unlink () =
      let terminate = Bytes.create 4 in
      Bytes.set_int32_le terminate 0 (Int32.of_int R.lp_terminate);
      for i = 0 to R.frame_entries - 1 do
        st.frames.Driver_api.dma_write ~off:(4 * i) terminate
      done
    in
    let tries = if pid = R.pid_in && ep > 0 then 4 else 64 in
    let rec poll n =
      let ctrl =
        Int32.to_int (Bytes.get_int32_le (st.tds.Driver_api.dma_read ~off:(td_off + 4) ~len:4) 0)
        land 0xFFFFFFFF
      in
      if ctrl land R.td_active = 0 then begin
        unlink ();
        if ctrl land R.td_stalled <> 0 then Error "stalled"
        else Ok (ctrl land 0x7FF)
      end
      else if n = 0 then begin
        unlink ();
        (* Re-check: the HC may have completed it during the unlink. *)
        let ctrl =
          Int32.to_int
            (Bytes.get_int32_le (st.tds.Driver_api.dma_read ~off:(td_off + 4) ~len:4) 0)
          land 0xFFFFFFFF
        in
        if ctrl land R.td_active = 0 && ctrl land R.td_stalled = 0 then Ok (ctrl land 0x7FF)
        else Error "transfer timed out (NAK)"
      end
      else begin
        st.env.Driver_api.env_msleep 1;
        poll (n - 1)
      end
    in
    poll tries

let read_back st len = st.tds.Driver_api.dma_read ~off:buf_off ~len

let control st ~devaddr ~setup ~dir_in ~len =
  if Bytes.length setup <> 8 then Error "setup must be 8 bytes"
  else begin
    match submit st ~pid:R.pid_setup ~devaddr ~ep:0 ~data:(Some setup) ~len:(8 + len) with
    | Error e -> Error ("setup: " ^ e)
    | Ok _ ->
      if dir_in && len > 0 then begin
        match submit st ~pid:R.pid_in ~devaddr ~ep:0 ~data:None ~len with
        | Error e -> Error ("data: " ^ e)
        | Ok actual -> Ok (read_back st actual)
      end
      else Ok Bytes.empty
  end

let setup_packet ~req_type ~request ~value ~index ~length =
  let s = Bytes.create 8 in
  Bytes.set s 0 (Char.chr req_type);
  Bytes.set s 1 (Char.chr request);
  Bytes.set_uint16_le s 2 value;
  Bytes.set_uint16_le s 4 index;
  Bytes.set_uint16_le s 6 length;
  s

let make_handle st ~address ~cls =
  { Driver_api.ud_address = address;
    ud_class = cls;
    ud_control = (fun ~setup ~dir_in ~len -> control st ~devaddr:address ~setup ~dir_in ~len);
    ud_bulk_out =
      (fun ~ep data ->
         match
           submit st ~pid:R.pid_out ~devaddr:address ~ep ~data:(Some data)
             ~len:(Bytes.length data)
         with
         | Ok _ -> Ok ()
         | Error e -> Error e);
    ud_bulk_in =
      (fun ~ep ~len ->
         match submit st ~pid:R.pid_in ~devaddr:address ~ep ~data:None ~len with
         | Ok actual -> Ok (read_back st actual)
         | Error e -> Error e);
    ud_interrupt_in =
      (fun ~ep ~len ->
         match submit st ~pid:R.pid_in ~devaddr:address ~ep ~data:None ~len with
         | Ok actual -> Ok (Some (read_back st actual))
         | Error "transfer timed out (NAK)" -> Ok None
         | Error e -> Error e) }

let enumerate st () =
  let handles = ref [] in
  for port = 0 to 1 do
    let sc = inw st (R.portsc1 + (2 * port)) in
    if sc land R.portsc_connect <> 0 then begin
      outw st (R.portsc1 + (2 * port)) R.portsc_reset;
      st.env.Driver_api.env_msleep 10;
      let address = st.next_addr in
      st.next_addr <- st.next_addr + 1;
      let set_addr = setup_packet ~req_type:0x00 ~request:0x05 ~value:address ~index:0 ~length:0 in
      match control st ~devaddr:0 ~setup:set_addr ~dir_in:false ~len:0 with
      | Error e -> st.env.Driver_api.env_printk (Printf.sprintf "uhci port %d: %s" port e)
      | Ok _ ->
        let get_desc =
          setup_packet ~req_type:0x80 ~request:0x06 ~value:0x0100 ~index:0 ~length:18
        in
        (match control st ~devaddr:address ~setup:get_desc ~dir_in:true ~len:18 with
         | Ok d when Bytes.length d >= 18 ->
           let cls = Char.code (Bytes.get d 4) in
           let set_cfg = setup_packet ~req_type:0x00 ~request:0x09 ~value:1 ~index:0 ~length:0 in
           ignore (control st ~devaddr:address ~setup:set_cfg ~dir_in:false ~len:0
                   : (bytes, string) result);
           handles := make_handle st ~address ~cls :: !handles
         | Ok _ -> st.env.Driver_api.env_printk "uhci: short descriptor"
         | Error e ->
           st.env.Driver_api.env_printk (Printf.sprintf "uhci port %d: descriptor: %s" port e))
    end
  done;
  Ok (List.rev !handles)

let probe env pdev =
  match pdev.Driver_api.pd_enable () with
  | Error e -> Error ("enable: " ^ e)
  | Ok () ->
    (match pdev.Driver_api.pd_io_bar 0 with
     | Error e -> Error ("io bar: " ^ e)
     | Ok io ->
       (match
          ( pdev.Driver_api.pd_alloc_dma ~bytes:4096 (),
            pdev.Driver_api.pd_alloc_dma ~bytes:4096 () )
        with
        | Ok frames, Ok tds ->
          let st =
            { env; pdev; io; frames; tds; xfer_lock = Sync.Mutex.create (); next_addr = 1 }
          in
          (* Empty frame list, then run. *)
          let terminate = Bytes.create 4 in
          Bytes.set_int32_le terminate 0 (Int32.of_int R.lp_terminate);
          for i = 0 to R.frame_entries - 1 do
            st.frames.Driver_api.dma_write ~off:(4 * i) terminate
          done;
          outw st R.frbaseadd (frames.Driver_api.dma_addr land 0xFFFF);
          outw st (R.frbaseadd + 2) (frames.Driver_api.dma_addr lsr 16);
          outw st R.usbcmd R.cmd_rs;
          Ok { Driver_api.uh_enumerate = (fun () -> enumerate st ()) }
        | Error e, _ | _, Error e -> Error ("alloc: " ^ e)))

let driver =
  { Driver_api.ud_name = "uhci-hcd"; ud_ids = [ (0x8086, 0x2934) ]; ud_probe = probe }
