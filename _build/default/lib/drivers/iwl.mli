(** iwlagn-5000-class 802.11 driver: firmware load gate, mailbox-driven
    management (scan/associate/rate control), DMA TX/RX rings, and
    asynchronous firmware events (scan complete, BSS change) delivered
    through the interrupt path.

    The BSS-change event is what exercises the wireless proxy's mirrored
    shared state: the kernel side learns of it without a synchronous
    round trip (paper §3.1.1). *)

val driver : Driver_api.wifi_driver
