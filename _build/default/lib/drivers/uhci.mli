(** uhci-hcd: the UHCI host controller driver.

    Same {!Driver_api.usb_host_instance} surface as {!Ehci}, so the same
    class drivers (usb-storage, usb-hid) ride on either controller — but
    everything here goes through legacy IO ports and a frame-list schedule,
    so under SUD this driver is confined by the IO-permission bitmap for
    its registers and by the IOMMU for its schedule/TD DMA. *)

val driver : Driver_api.usb_host_driver
