(** EHCI-class USB host controller driver plus the class drivers that ride
    on it: HID keyboard and bulk-only mass storage.

    The host driver owns the DMA schedule (queue heads and transfer
    descriptors live in its DMA region — the structures a malicious USB
    driver would point at kernel memory), enumerates devices behind the
    root ports and hands out transfer primitives; the class drivers build
    a {!Driver_api.block_instance} (SCSI over bulk-only transport) and a
    keyboard poller on top. *)

val driver : Driver_api.usb_host_driver

val bind_storage : Driver_api.usb_dev_handle -> (Driver_api.block_instance, string) result
(** usb-storage: INQUIRY + READ CAPACITY, then READ(10)/WRITE(10). *)

val poll_keyboard :
  Driver_api.env -> Driver_api.usb_dev_handle -> Driver_api.input_callbacks -> unit
(** usb-hid: spawn a worker polling the interrupt endpoint (8-byte boot
    reports) and feeding key events to the callbacks. *)
