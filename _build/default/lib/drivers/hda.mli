(** snd-hda-intel-class audio driver: a cyclic buffer described by a BDL,
    period interrupts refilling it from a pending PCM queue, and codec
    verbs for volume.  Runs unmodified in-kernel or under SUD; under SUD a
    glitch-free stream demonstrates that a user-space driver can hold a
    real-time workload (paper §4.1 suggests [sched_setscheduler] for
    exactly this). *)

val driver : Driver_api.audio_driver

val period_bytes : int
val periods : int
