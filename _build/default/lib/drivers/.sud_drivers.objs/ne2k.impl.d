lib/drivers/ne2k.ml: Bus Bytes Char Driver_api Ne2k_dev Netdev
