lib/drivers/ne2k.mli: Driver_api
