lib/drivers/iwl.mli: Driver_api
