lib/drivers/e1000.mli: Driver_api
