lib/drivers/iwl.ml: Array Bus Bytes Char Driver_api Int64 List Printf Wifi_dev
