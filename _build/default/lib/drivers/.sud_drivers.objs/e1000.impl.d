lib/drivers/e1000.ml: Array Bytes Char Driver_api E1000_dev Int64 Netdev Printf
