lib/drivers/hda.mli: Driver_api
