lib/drivers/hda.ml: Buffer Bus Bytes Driver_api Hda_dev Int64
