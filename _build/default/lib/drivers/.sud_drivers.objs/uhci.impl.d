lib/drivers/uhci.ml: Bytes Char Driver_api Int32 List Printf Sync Uhci_dev
