lib/drivers/uhci.mli: Driver_api
