lib/drivers/ehci.ml: Bus Bytes Char Driver_api Int32 Int64 List Printf Sync Usb_hci_dev
