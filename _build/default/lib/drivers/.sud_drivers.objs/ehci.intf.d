lib/drivers/ehci.mli: Driver_api
