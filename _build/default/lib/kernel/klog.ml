type level = Debug | Info | Warn | Err

type t = { eng : Engine.t; mutable log : (int * level * string) list }

let create eng = { eng; log = [] }

let printk t level fmt =
  Format.kasprintf
    (fun msg -> t.log <- (Engine.now t.eng, level, msg) :: t.log)
    fmt

let entries t = List.rev t.log

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    scan 0
  end

let matching t sub = List.filter (fun (_, _, m) -> contains_substring m sub) (entries t)

let clear t = t.log <- []
