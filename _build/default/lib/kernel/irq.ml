type handler = source:Bus.bdf -> unit

type entry = { hname : string; fn : handler; mutable hits : int }

type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  preempt : Preempt.t;
  klog : Klog.t;
  handlers : (int, entry) Hashtbl.t;
  mutable next_vector : int;
  mutable spurious_count : int;
  mutable delivered : int;
}

let create eng cpu preempt klog =
  { eng;
    cpu;
    preempt;
    klog;
    handlers = Hashtbl.create 16;
    next_vector = 32;
    spurious_count = 0;
    delivered = 0 }

let alloc_vector t =
  let v = t.next_vector in
  t.next_vector <- t.next_vector + 1;
  v

let request_irq t ~vector ~name fn =
  if Hashtbl.mem t.handlers vector then
    Error (Printf.sprintf "vector %d already requested" vector)
  else begin
    Hashtbl.add t.handlers vector { hname = name; fn; hits = 0 };
    Ok ()
  end

let free_irq t ~vector = Hashtbl.remove t.handlers vector

let deliver t ~source ~vector =
  t.delivered <- t.delivered + 1;
  let model = Cpu.cost_model t.cpu in
  Cpu.account t.cpu ~label:"kernel:irq" model.Cost_model.irq_deliver_ns;
  match Hashtbl.find_opt t.handlers vector with
  | None ->
    t.spurious_count <- t.spurious_count + 1;
    Klog.printk t.klog Klog.Warn "irq: spurious vector %d from %s" vector
      (Bus.string_of_bdf source)
  | Some entry ->
    entry.hits <- entry.hits + 1;
    (* Top halves run atomically: blocking inside one is a bug the
       preemption tracker will catch. *)
    Preempt.disable t.preempt;
    Fun.protect ~finally:(fun () -> Preempt.enable t.preempt) (fun () -> entry.fn ~source)

let count t ~vector =
  match Hashtbl.find_opt t.handlers vector with Some e -> e.hits | None -> 0

let spurious t = t.spurious_count
let total_delivered t = t.delivered
