exception Rlimit_exceeded of string

type sched_policy = Normal | Realtime

type t = {
  ppid : int;
  puid : int;
  pname : string;
  eng : Engine.t;
  mutable alive : bool;
  mutable fibers : Fiber.t list;
  mutable exit_hooks : (unit -> unit) list;
  mutable mem_limit : int option;
  mutable mem_used : int;
  mutable policy : sched_policy;
}

type table = {
  teng : Engine.t;
  mutable next_pid : int;
  mutable procs : t list;
  kernel : t;
  by_fiber : (int, t) Hashtbl.t;
}

let make_proc eng ~pid ~uid ~name =
  { ppid = pid;
    puid = uid;
    pname = name;
    eng;
    alive = true;
    fibers = [];
    exit_hooks = [];
    mem_limit = None;
    mem_used = 0;
    policy = Normal }

let create_table eng =
  let kernel = make_proc eng ~pid:0 ~uid:0 ~name:"kernel" in
  { teng = eng; next_pid = 1; procs = [ kernel ]; kernel; by_fiber = Hashtbl.create 64 }

let kernel_process table = table.kernel

let spawn table ~name ~uid =
  let p = make_proc table.teng ~pid:table.next_pid ~uid ~name in
  table.next_pid <- table.next_pid + 1;
  table.procs <- p :: table.procs;
  p

let pid t = t.ppid
let uid t = t.puid
let name t = t.pname
let is_alive t = t.alive
let find table ~pid = List.find_opt (fun p -> p.ppid = pid) table.procs
let all table = List.rev table.procs

let spawn_fiber t ?name fn =
  if not t.alive then failwith (t.pname ^ ": process is dead");
  let fname = Option.value ~default:(t.pname ^ "-fiber") name in
  let fiber = Fiber.spawn t.eng ~name:fname fn in
  t.fibers <- fiber :: t.fibers;
  fiber

let current table =
  match Fiber.self () with
  | fiber ->
    let fid = Fiber.id fiber in
    (match Hashtbl.find_opt table.by_fiber fid with
     | Some p -> p
     | None ->
       (* Walk process fiber lists lazily and cache the hit. *)
       (match
          List.find_opt
            (fun p -> List.exists (fun f -> Fiber.id f = fid) p.fibers)
            table.procs
        with
        | Some p ->
          Hashtbl.replace table.by_fiber fid p;
          p
        | None -> table.kernel))
  | exception Failure _ -> table.kernel

let kill t =
  if t.alive then begin
    t.alive <- false;
    let fibers = t.fibers in
    t.fibers <- [];
    List.iter Fiber.kill fibers;
    let hooks = t.exit_hooks in
    t.exit_hooks <- [];
    List.iter (fun h -> h ()) hooks;
    t.mem_used <- 0
  end

let interrupt t =
  List.iter (fun f -> ignore (Fiber.interrupt f : bool)) t.fibers

let on_exit t h = t.exit_hooks <- h :: t.exit_hooks

let setrlimit_memory t ~bytes = t.mem_limit <- bytes

let charge_memory t ~bytes =
  (match t.mem_limit with
   | Some limit when t.mem_used + bytes > limit ->
     raise (Rlimit_exceeded (Printf.sprintf "%s: RLIMIT %d + %d > %d" t.pname t.mem_used bytes limit))
   | Some _ | None -> ());
  t.mem_used <- t.mem_used + bytes

let uncharge_memory t ~bytes = t.mem_used <- max 0 (t.mem_used - bytes)
let memory_used t = t.mem_used

let set_scheduler t policy = t.policy <- policy
let scheduler t = t.policy
