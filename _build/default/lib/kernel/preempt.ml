exception Sleeping_in_atomic of string

type t = { depth : (int, int) Hashtbl.t }

let create () = { depth = Hashtbl.create 16 }

(* Event-context (non-fiber) code is treated as fiber id -1: interrupt
   delivery runs there and is always atomic. *)
let fiber_key () =
  match Fiber.self () with
  | f -> Fiber.id f
  | exception Failure _ -> -1

let get t k = Option.value ~default:0 (Hashtbl.find_opt t.depth k)

let disable t =
  let k = fiber_key () in
  Hashtbl.replace t.depth k (get t k + 1)

let enable t =
  let k = fiber_key () in
  match get t k with
  | 0 -> invalid_arg "Preempt.enable: not in an atomic section"
  | 1 -> Hashtbl.remove t.depth k
  | n -> Hashtbl.replace t.depth k (n - 1)

let in_atomic t =
  let k = fiber_key () in
  k = -1 || get t k > 0

let assert_may_sleep t what =
  if in_atomic t then raise (Sleeping_in_atomic what)

let with_atomic t fn =
  disable t;
  Fun.protect ~finally:(fun () -> enable t) fn

module Spinlock = struct
  type lock = { ctx : t; mutable owner : int option }

  let create ctx = { ctx; owner = None }

  let lock l =
    let k = fiber_key () in
    (match l.owner with
     | Some o when o = k -> failwith "Spinlock: recursive acquisition (deadlock)"
     | Some _ -> failwith "Spinlock: contended in single-runqueue simulator (deadlock)"
     | None -> ());
    disable l.ctx;
    l.owner <- Some k

  let unlock l =
    (match l.owner with
     | None -> invalid_arg "Spinlock.unlock: not held"
     | Some _ -> ());
    l.owner <- None;
    enable l.ctx

  let with_lock l fn =
    lock l;
    Fun.protect ~finally:(fun () -> unlock l) fn

  let held l = l.owner <> None
end
