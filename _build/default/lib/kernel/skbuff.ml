type t = {
  mutable data : bytes;
  mutable csum_verified : bool;
  mutable shared_with_driver : bool;
  mutable refresh : (unit -> bytes) option;
}

let of_bytes data = { data; csum_verified = false; shared_with_driver = false; refresh = None }

let copy t =
  { data = Bytes.copy t.data;
    csum_verified = t.csum_verified;
    shared_with_driver = false;
    refresh = None }

let length t = Bytes.length t.data

let checksum_sub b ~off ~len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let checksum b = checksum_sub b ~off:0 ~len:(Bytes.length b)

module Mac = struct
  let broadcast = Bytes.make 6 '\xff'

  let equal = Bytes.equal

  let pp fmt m =
    for i = 0 to 5 do
      if i > 0 then Format.pp_print_char fmt ':';
      Format.fprintf fmt "%02x" (Char.code (Bytes.get m i))
    done

  let of_string s =
    let parts = String.split_on_char ':' s in
    if List.length parts <> 6 then invalid_arg "Mac.of_string";
    let b = Bytes.create 6 in
    List.iteri (fun i p -> Bytes.set b i (Char.chr (int_of_string ("0x" ^ p)))) parts;
    b
end
