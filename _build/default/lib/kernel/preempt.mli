(** Preemption-context tracking and spinlocks.

    Linux code holding a spinlock (or running in interrupt context) must
    not sleep; the SUD proxy drivers must answer callbacks made from such
    contexts without an upcall (paper §3.1.1).  This module tracks an
    atomic-section depth per fiber so proxies can ask {!in_atomic}, and
    the kernel asserts {!assert_may_sleep} at every blocking point —
    sleeping in atomic context is a hard bug, as in the real kernel. *)

exception Sleeping_in_atomic of string

type t

val create : unit -> t

val disable : t -> unit
(** Enter an atomic section (preempt_disable). *)

val enable : t -> unit
(** Leave it.  Raises [Invalid_argument] when not in one. *)

val in_atomic : t -> bool
(** Whether the current fiber is in an atomic section. *)

val assert_may_sleep : t -> string -> unit
(** Raises {!Sleeping_in_atomic} if called in atomic context. *)

val with_atomic : t -> (unit -> 'a) -> 'a

module Spinlock : sig
  type lock

  val create : t -> lock

  val lock : lock -> unit
  (** Busy-waits never happen in the simulator (single runqueue), so
      acquiring an already-held lock from a second fiber raises
      [Failure] — it would be a real deadlock.  Acquiring recursively
      raises too. *)

  val unlock : lock -> unit
  val with_lock : lock -> (unit -> 'a) -> 'a
  val held : lock -> bool
end
