(** Socket buffers and the internet checksum.

    An [Skbuff.t] carries frame bytes plus receive-path metadata.  The
    [csum_verified] flag mirrors Linux's CHECKSUM_UNNECESSARY: SUD's
    Ethernet proxy sets it after its fused defensive-copy-plus-checksum
    pass so the stack does not checksum twice (paper §3.1.2). *)

type t = {
  mutable data : bytes;
  mutable csum_verified : bool;
  mutable shared_with_driver : bool;
      (** true when [data] reflects memory a (possibly malicious) driver
          can still write — the TOCTOU hazard the defensive copy removes *)
  mutable refresh : (unit -> bytes) option;
      (** models data living in driver-shared memory: the stack re-reads
          through this at delivery time, after the firewall verdict.  A
          proxy doing the defensive copy leaves it [None]. *)
}

val of_bytes : bytes -> t
(** Fresh skb owning a private copy of nothing — wraps [data] directly. *)

val copy : t -> t
(** Deep copy; clears [shared_with_driver]. *)

val length : t -> int

val checksum : bytes -> int
(** 16-bit internet checksum over the whole buffer. *)

val checksum_sub : bytes -> off:int -> len:int -> int

module Mac : sig
  val broadcast : bytes
  val equal : bytes -> bytes -> bool
  val pp : Format.formatter -> bytes -> unit
  val of_string : string -> bytes
  (** Parse "aa:bb:cc:dd:ee:ff". *)
end
