(** Simulated Unix processes.

    SUD's code-isolation story is ordinary Unix protection: each driver
    runs in a process under its own UID, can be killed with [kill -9],
    restarted, and constrained with [setrlimit].  This module provides
    exactly that much process machinery: identity, fiber ownership,
    signals, memory accounting against RLIMIT_AS, and exit hooks for
    kernel-side cleanup (the proxy detaching a dead driver). *)

type table
type t

val create_table : Engine.t -> table

val kernel_process : table -> t
(** PID 0, UID 0 — kernel threads belong here. *)

val spawn : table -> name:string -> uid:int -> t
(** A new process with no fibers yet. *)

val pid : t -> int
val uid : t -> int
val name : t -> string
val is_alive : t -> bool
val find : table -> pid:int -> t option
val all : table -> t list

val spawn_fiber : t -> ?name:string -> (unit -> unit) -> Fiber.t
(** Run a fiber belonging to this process; it is killed with the process.
    Raises [Failure] if the process is dead. *)

val current : table -> t
(** The process owning the running fiber (the kernel process when the
    fiber is unowned or we are outside fiber context). *)

val kill : t -> unit
(** SIGKILL: every fiber of the process is killed, exit hooks run,
    memory charges are dropped.  Idempotent. *)

val interrupt : t -> unit
(** SIGINT (Ctrl-C): interruptible waits in the process's fibers return
    [Interrupted]; the process keeps running. *)

val on_exit : t -> (unit -> unit) -> unit

(** {1 Resource limits} *)

exception Rlimit_exceeded of string

val setrlimit_memory : t -> bytes:int option -> unit
val charge_memory : t -> bytes:int -> unit
(** Raises {!Rlimit_exceeded} if the charge would exceed the limit. *)

val uncharge_memory : t -> bytes:int -> unit
val memory_used : t -> int

(** {1 Scheduling policy} *)

type sched_policy = Normal | Realtime

val set_scheduler : t -> sched_policy -> unit
val scheduler : t -> sched_policy
