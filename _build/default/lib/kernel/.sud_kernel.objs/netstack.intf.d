lib/kernel/netstack.mli: Cpu Engine Klog Netdev Preempt Process Skbuff
