lib/kernel/irq.ml: Bus Cost_model Cpu Engine Fun Hashtbl Klog Preempt Printf
