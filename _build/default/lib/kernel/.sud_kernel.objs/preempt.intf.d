lib/kernel/preempt.mli:
