lib/kernel/netstack.ml: Bytes Char Cost_model Cpu Engine Fiber Hashtbl Int32 Klog List Netdev Preempt Process Queue Skbuff Sync
