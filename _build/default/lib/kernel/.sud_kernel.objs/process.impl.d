lib/kernel/process.ml: Engine Fiber Hashtbl List Option Printf
