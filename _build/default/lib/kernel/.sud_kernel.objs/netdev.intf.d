lib/kernel/netdev.mli: Skbuff Sync
