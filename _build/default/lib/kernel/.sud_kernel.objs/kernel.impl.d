lib/kernel/kernel.ml: Bus Cost_model Cpu Device Engine Iommu Ioport Irq Klog Netstack Pci_cfg Pci_topology Phys_mem Preempt Process Sysfs
