lib/kernel/kernel.mli: Bus Cost_model Cpu Device Engine Iommu Ioport Irq Klog Netstack Pci_topology Phys_mem Preempt Process Sysfs
