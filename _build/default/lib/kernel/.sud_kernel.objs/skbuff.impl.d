lib/kernel/skbuff.ml: Bytes Char Format List String
