lib/kernel/klog.mli: Engine Format
