lib/kernel/preempt.ml: Fiber Fun Hashtbl Option
