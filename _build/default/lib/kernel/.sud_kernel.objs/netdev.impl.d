lib/kernel/netdev.ml: Bytes Skbuff Sync
