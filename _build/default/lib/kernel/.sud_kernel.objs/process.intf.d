lib/kernel/process.mli: Engine Fiber
