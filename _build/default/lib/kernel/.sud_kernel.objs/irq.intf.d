lib/kernel/irq.mli: Bus Cpu Engine Klog Preempt
