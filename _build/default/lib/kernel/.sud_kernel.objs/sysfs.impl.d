lib/kernel/sysfs.ml: Bus List Printf
