lib/kernel/klog.ml: Engine Format List String
