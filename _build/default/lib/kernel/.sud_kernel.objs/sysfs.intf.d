lib/kernel/sysfs.mli: Bus
