lib/kernel/skbuff.mli: Format
