(** The kernel log (dmesg).  Subsystems print diagnostics here; tests
    assert on it (e.g. that the net stack complained about a misbehaving
    driver rather than crashing, paper §3.1.1). *)

type level = Debug | Info | Warn | Err

type t

val create : Engine.t -> t

val printk : t -> level -> ('a, Format.formatter, unit, unit) format4 -> 'a

val entries : t -> (int * level * string) list
(** [(timestamp_ns, level, message)] oldest first. *)

val matching : t -> string -> (int * level * string) list
(** Entries whose message contains the given substring. *)

val clear : t -> unit
