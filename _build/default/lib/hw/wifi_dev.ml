module Regs = struct
  let ctrl = 0x00
  let int_sts = 0x04
  let int_mask = 0x08
  let fw = 0x0C
  let cmd = 0x10
  let cmd_addr = 0x14
  let evq = 0x18
  let txb = 0x20
  let txlen = 0x24
  let txh = 0x28
  let txt = 0x2C
  let rxb = 0x30
  let rxlen = 0x34
  let rxh = 0x38
  let rxt = 0x3C
  let rate = 0x44
  let rate_table = 0x48
  let bss_count = 0x80
  let bss_table = 0x84

  let ctrl_enable = 0x1
  let ctrl_reset = 0x40000000

  let fw_magic = 0x57494649 (* "WIFI" *)
  let fw_ready = 0x1

  let int_tx = 0x1
  let int_rx = 0x2
  let int_event = 0x4

  let op_scan = 1
  let op_assoc = 2
  let op_disassoc = 3
  let op_set_rate = 4

  let ev_none = 0
  let ev_scan_done = 1
  let ev_assoc_done = 2
  let ev_disassoc = 3
  let ev_bss_changed = 4

  let desc_size = 16
end

open Regs

type bss = { bssid : int; ssid : string; signal_dbm : int }

let supported_rates = [| 6; 12; 24; 36; 48; 54 |]

type t = {
  eng : Engine.t;
  dev : Device.t;
  mac_bytes : bytes;
  bss_list : bss list;
  mutable r_ctrl : int;
  mutable r_int : int;
  mutable r_mask : int;
  mutable fw_loaded : bool;
  mutable r_cmd_addr : int;
  mutable r_txb : int;
  mutable r_txlen : int;
  mutable r_txh : int;
  mutable r_txt : int;
  mutable r_rxb : int;
  mutable r_rxlen : int;
  mutable r_rxh : int;
  mutable r_rxt : int;
  mutable r_rate : int;
  mutable assoc : int option;
  events : int Queue.t;
  port : Net_medium.port;
  medium : Net_medium.t;
  mutable tx_busy : bool;
  mutable n_tx : int;
  mutable n_rx : int;
  mutable n_dma_fault : int;
}

let raise_irq t bits =
  t.r_int <- t.r_int lor bits;
  if t.r_int land t.r_mask <> 0 then
    ignore (Device.raise_msi t.dev : (unit, Bus.fault) result)

let push_event t ev =
  Queue.push ev t.events;
  raise_irq t int_event

let dma_read t addr len =
  match Device.dma_read t.dev ~addr ~len with
  | Ok b -> Some b
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    None

let dma_write t addr data =
  match Device.dma_write t.dev ~addr ~data with
  | Ok () -> true
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    false

let enabled t = t.r_ctrl land ctrl_enable <> 0 && t.fw_loaded

(* TX descriptors: addr(8) len(4) status(4); status 1 = done. *)
let rec process_tx t =
  if (not (enabled t)) || t.r_txlen = 0 || t.r_txh = t.r_txt then t.tx_busy <- false
  else begin
    let slots = t.r_txlen / desc_size in
    let slot = t.r_txh in
    let daddr = t.r_txb + (slot * desc_size) in
    match dma_read t daddr desc_size with
    | None -> t.tx_busy <- false
    | Some desc ->
      let buf = Int64.to_int (Bytes.get_int64_le desc 0) in
      let len = Int32.to_int (Bytes.get_int32_le desc 8) in
      (match dma_read t buf len with
       | None -> t.tx_busy <- false
       | Some frame ->
         if t.assoc <> None then begin
           t.n_tx <- t.n_tx + 1;
           Net_medium.send t.medium t.port frame
         end;
         Bytes.set_int32_le desc 12 1l;
         ignore (dma_write t daddr desc : bool);
         t.r_txh <- (slot + 1) mod slots;
         if t.r_txh = t.r_txt then begin
           t.tx_busy <- false;
           raise_irq t int_tx
         end
         else
           ignore
             (Engine.schedule_after t.eng 400 (fun () -> process_tx t)
              : Engine.handle))
  end

let kick_tx t =
  if (not t.tx_busy) && enabled t then begin
    t.tx_busy <- true;
    ignore (Engine.schedule_after t.eng 400 (fun () -> process_tx t) : Engine.handle)
  end

let receive t frame =
  if enabled t && t.assoc <> None && t.r_rxlen > 0 && t.r_rxh <> t.r_rxt then begin
    let slots = t.r_rxlen / desc_size in
    let slot = t.r_rxh in
    let daddr = t.r_rxb + (slot * desc_size) in
    match dma_read t daddr desc_size with
    | None -> ()
    | Some desc ->
      let buf = Int64.to_int (Bytes.get_int64_le desc 0) in
      if dma_write t buf frame then begin
        Bytes.set_int32_le desc 8 (Int32.of_int (Bytes.length frame));
        Bytes.set_int32_le desc 12 1l;
        if dma_write t daddr desc then begin
          t.r_rxh <- (slot + 1) mod slots;
          t.n_rx <- t.n_rx + 1;
          raise_irq t int_rx
        end
      end
  end

(* Mailbox command: a 16-byte block {op(4), arg(4), pad(8)} DMA-read from
   cmd_addr when the doorbell register is written. *)
let run_command t =
  match dma_read t t.r_cmd_addr 16 with
  | None -> ()
  | Some block ->
    let op = Int32.to_int (Bytes.get_int32_le block 0) in
    let arg = Int32.to_int (Bytes.get_int32_le block 4) in
    if op = op_scan then
      ignore
        (Engine.schedule_after t.eng 2_000_000 (fun () -> push_event t ev_scan_done)
         : Engine.handle)
    else if op = op_assoc then begin
      if List.exists (fun b -> b.bssid = arg) t.bss_list then
        ignore
          (Engine.schedule_after t.eng 500_000 (fun () ->
               t.assoc <- Some arg;
               push_event t ev_assoc_done)
           : Engine.handle)
    end
    else if op = op_disassoc then begin
      t.assoc <- None;
      push_event t ev_disassoc
    end
    else if op = op_set_rate then begin
      if arg >= 0 && arg < Array.length supported_rates then t.r_rate <- arg
    end

let reset t =
  t.r_ctrl <- 0;
  t.r_int <- 0;
  t.r_mask <- 0;
  t.fw_loaded <- false;
  t.r_txb <- 0;
  t.r_txlen <- 0;
  t.r_txh <- 0;
  t.r_txt <- 0;
  t.r_rxb <- 0;
  t.r_rxlen <- 0;
  t.r_rxh <- 0;
  t.r_rxt <- 0;
  t.r_rate <- 0;
  t.assoc <- None;
  Queue.clear t.events

let read32 t off =
  if off = ctrl then t.r_ctrl
  else if off = int_sts then begin
    let v = t.r_int in
    t.r_int <- 0;
    v
  end
  else if off = int_mask then t.r_mask
  else if off = fw then if t.fw_loaded then fw_ready else 0
  else if off = evq then (match Queue.take_opt t.events with Some e -> e | None -> ev_none)
  else if off = cmd_addr then t.r_cmd_addr
  else if off = txb then t.r_txb
  else if off = txlen then t.r_txlen
  else if off = txh then t.r_txh
  else if off = txt then t.r_txt
  else if off = rxb then t.r_rxb
  else if off = rxlen then t.r_rxlen
  else if off = rxh then t.r_rxh
  else if off = rxt then t.r_rxt
  else if off = rate then t.r_rate
  else if off >= rate_table && off < rate_table + (4 * Array.length supported_rates) then
    supported_rates.((off - rate_table) / 4)
  else if off = bss_count then List.length t.bss_list
  else if off >= bss_table && off < bss_table + (8 * List.length t.bss_list) then begin
    let idx = (off - bss_table) / 8 in
    let b = List.nth t.bss_list idx in
    if (off - bss_table) mod 8 = 0 then b.bssid else b.signal_dbm land 0xff
  end
  else 0

let write32 t off v =
  if off = ctrl then begin
    if v land ctrl_reset <> 0 then reset t else t.r_ctrl <- v
  end
  else if off = int_mask then t.r_mask <- v
  else if off = fw then begin
    if v = fw_magic then t.fw_loaded <- true
  end
  else if off = cmd then run_command t
  else if off = cmd_addr then t.r_cmd_addr <- v
  else if off = txb then t.r_txb <- v
  else if off = txlen then t.r_txlen <- v
  else if off = txh then t.r_txh <- v
  else if off = txt then begin
    t.r_txt <- v;
    kick_tx t
  end
  else if off = rxb then t.r_rxb <- v
  else if off = rxlen then t.r_rxlen <- v
  else if off = rxh then t.r_rxh <- v
  else if off = rxt then t.r_rxt <- v
  else if off = rate then begin
    if v >= 0 && v < Array.length supported_rates then t.r_rate <- v
  end

let create eng ~mac ~medium ~bss_list () =
  if Bytes.length mac <> 6 then invalid_arg "Wifi_dev.create: MAC must be 6 bytes";
  let cfg =
    Pci_cfg.create ~vendor:0x8086 ~device:0x4232 ~class_code:0x028000
      ~bars:[| Some (Pci_cfg.Mem { size = 0x2000 }) |]
      ()
  in
  Pci_cfg.add_msi_capability cfg;
  let rec t =
    lazy
      (let dev = Device.create ~name:"iwl" ~cfg ~ops:Device.no_io in
       let port = Net_medium.attach medium ~name:"iwl" ~rx:(fun f -> receive (Lazy.force t) f) in
       { eng;
         dev;
         mac_bytes = Bytes.copy mac;
         bss_list;
         r_ctrl = 0;
         r_int = 0;
         r_mask = 0;
         fw_loaded = false;
         r_cmd_addr = 0;
         r_txb = 0;
         r_txlen = 0;
         r_txh = 0;
         r_txt = 0;
         r_rxb = 0;
         r_rxlen = 0;
         r_rxh = 0;
         r_rxt = 0;
         r_rate = 0;
         assoc = None;
         events = Queue.create ();
         port;
         medium;
         tx_busy = false;
         n_tx = 0;
         n_rx = 0;
         n_dma_fault = 0 })
  in
  let t = Lazy.force t in
  Device.set_ops t.dev
    { Device.mmio_read = (fun ~bar:_ ~off ~size:_ -> read32 t (off land lnot 3));
      mmio_write = (fun ~bar:_ ~off ~size:_ v -> write32 t (off land lnot 3) v);
      io_read = (fun ~bar:_ ~off:_ ~size -> (1 lsl (size * 8)) - 1);
      io_write = (fun ~bar:_ ~off:_ ~size:_ _ -> ());
      reset = (fun () -> reset t) };
  t

let device t = t.dev
let mac t = Bytes.copy t.mac_bytes
let associated t = t.assoc
let current_rate t = supported_rates.(t.r_rate)
let tx_frames t = t.n_tx
let rx_frames t = t.n_rx

let roam t ~bssid =
  if List.exists (fun b -> b.bssid = bssid) t.bss_list then begin
    t.assoc <- Some bssid;
    push_event t ev_bss_changed
  end
