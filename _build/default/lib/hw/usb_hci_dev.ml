module Regs = struct
  let usbcmd = 0x00
  let usbsts = 0x04
  let usbintr = 0x08
  let asynclistaddr = 0x18
  let portsc0 = 0x44

  let cmd_run = 0x1
  let sts_int = 0x1
  let sts_port_change = 0x4
  let intr_enable = 0x1
  let portsc_connect = 0x1
  let portsc_enabled = 0x4
  let portsc_reset = 0x100

  let qh_size = 32
  let qtd_size = 32
  let qtd_active = 0x1
  let qtd_ioc = 0x2

  let ep_type_control = 0
  let ep_type_bulk = 2
  let ep_type_interrupt = 3
end

open Regs

type t = {
  eng : Engine.t;
  dev : Device.t;
  ports : Usb_device.t option array;
  portsc : int array;
  mutable r_cmd : int;
  mutable r_sts : int;
  mutable r_intr : int;
  mutable r_async : int;
  mutable ticking : bool;
  mutable n_done : int;
  mutable n_dma_fault : int;
}

let microframe_ns = 125_000

let raise_irq t bits =
  t.r_sts <- t.r_sts lor bits;
  if t.r_intr land intr_enable <> 0 then
    ignore (Device.raise_msi t.dev : (unit, Bus.fault) result)

let dma_read t addr len =
  match Device.dma_read t.dev ~addr ~len with
  | Ok b -> Some b
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    None

let dma_write t addr data =
  match Device.dma_write t.dev ~addr ~data with
  | Ok () -> true
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    false

let find_by_address t addr =
  Array.to_list t.ports
  |> List.filter_map Fun.id
  |> List.find_opt (fun d -> Usb_device.address d = addr)

(* Execute one qTD against the addressed device.  Returns [None] on NAK
   (leave active for retry). *)
let execute t ~devaddr ~ep ~ep_type ~dir ~buf_addr ~len =
  match find_by_address t devaddr with
  | None -> Some (1, 0)   (* no such device: stall *)
  | Some dev ->
    if ep_type = ep_type_control then begin
      match dma_read t buf_addr 8 with
      | None -> Some (1, 0)
      | Some setup ->
        let w_length = Bytes.get_uint16_le setup 6 in
        let data_in = Char.code (Bytes.get setup 0) land 0x80 <> 0 in
        let out_data =
          if (not data_in) && w_length > 0 && len >= 8 + w_length then
            Option.value ~default:Bytes.empty (dma_read t (buf_addr + 8) w_length)
          else Bytes.empty
        in
        (match Usb_device.control dev ~setup ~data:out_data with
         | Usb_device.Done payload ->
           if data_in && Bytes.length payload > 0 then begin
             if dma_write t (buf_addr + 8) payload then
               Some (0, Bytes.length payload)
             else Some (1, 0)
           end
           else Some (0, 0)
         | Usb_device.Nak -> None
         | Usb_device.Stall -> Some (1, 0))
    end
    else if dir = 1 then begin
      match Usb_device.endpoint_in dev ~ep ~len with
      | Usb_device.Done payload ->
        if Bytes.length payload = 0 || dma_write t buf_addr payload then
          Some (0, Bytes.length payload)
        else Some (1, 0)
      | Usb_device.Nak -> None
      | Usb_device.Stall -> Some (1, 0)
    end
    else begin
      match dma_read t buf_addr len with
      | None -> Some (1, 0)
      | Some data ->
        (match Usb_device.endpoint_out dev ~ep ~data with
         | Usb_device.Done _ -> Some (0, len)
         | Usb_device.Nak -> None
         | Usb_device.Stall -> Some (1, 0))
    end

let process_qh t qh_addr =
  match dma_read t qh_addr qh_size with
  | None -> 0
  | Some qh ->
    let next = Int64.to_int (Bytes.get_int64_le qh 0) in
    let devaddr = Char.code (Bytes.get qh 8) in
    let ep = Char.code (Bytes.get qh 9) in
    let ep_type = Char.code (Bytes.get qh 10) in
    let dir = Char.code (Bytes.get qh 11) in
    let qtd_ptr = Int64.to_int (Bytes.get_int64_le qh 16) in
    if qtd_ptr <> 0 then begin
      match dma_read t qtd_ptr qtd_size with
      | None -> next
      | Some qtd ->
        let flags = Char.code (Bytes.get qtd 8) in
        if flags land qtd_active <> 0 then begin
          let len = Int32.to_int (Bytes.get_int32_le qtd 12) in
          let buf = Int64.to_int (Bytes.get_int64_le qtd 16) in
          match execute t ~devaddr ~ep ~ep_type ~dir ~buf_addr:buf ~len with
          | None -> ()   (* NAK: retry next microframe *)
          | Some (status, actual) ->
            Bytes.set qtd 8 (Char.chr (flags land lnot qtd_active));
            Bytes.set qtd 9 (Char.chr status);
            Bytes.set_int32_le qtd 24 (Int32.of_int actual);
            if dma_write t qtd_ptr qtd then begin
              t.n_done <- t.n_done + 1;
              (* Advance the QH to the next qTD in the chain. *)
              let next_qtd = Bytes.get_int64_le qtd 0 in
              Bytes.set_int64_le qh 16 next_qtd;
              ignore (dma_write t qh_addr qh : bool);
              if flags land qtd_ioc <> 0 then raise_irq t sts_int
            end
        end;
        next
    end
    else next

let rec tick t =
  if t.r_cmd land cmd_run <> 0 then begin
    let rec walk addr budget =
      if addr <> 0 && budget > 0 then begin
        let next = process_qh t addr in
        walk next (budget - 1)
      end
    in
    walk t.r_async 64;
    ignore (Engine.schedule_after t.eng microframe_ns (fun () -> tick t) : Engine.handle)
  end
  else t.ticking <- false

let start t =
  if not t.ticking then begin
    t.ticking <- true;
    ignore (Engine.schedule_after t.eng microframe_ns (fun () -> tick t) : Engine.handle)
  end

let read32 t off =
  if off = usbcmd then t.r_cmd
  else if off = usbsts then t.r_sts
  else if off = usbintr then t.r_intr
  else if off = asynclistaddr then t.r_async
  else if off >= portsc0 && off < portsc0 + (4 * Array.length t.portsc) then
    t.portsc.((off - portsc0) / 4)
  else 0

let write32 t off v =
  if off = usbcmd then begin
    t.r_cmd <- v;
    if v land cmd_run <> 0 then start t
  end
  else if off = usbsts then t.r_sts <- t.r_sts land lnot v (* write-1-to-clear *)
  else if off = usbintr then t.r_intr <- v
  else if off = asynclistaddr then t.r_async <- v
  else if off >= portsc0 && off < portsc0 + (4 * Array.length t.portsc) then begin
    let p = (off - portsc0) / 4 in
    if v land portsc_reset <> 0 then begin
      (* Port reset: the attached device returns to address 0 and the port
         becomes enabled. *)
      (match t.ports.(p) with
       | Some d -> Usb_device.set_address d 0
       | None -> ());
      t.portsc.(p) <- t.portsc.(p) land lnot portsc_reset lor portsc_enabled
    end
    else t.portsc.(p) <- v land lnot (portsc_connect lor portsc_enabled) lor (t.portsc.(p) land (portsc_connect lor portsc_enabled))
  end

let create eng ~ports () =
  if ports <= 0 || ports > 8 then invalid_arg "Usb_hci_dev.create: 1..8 ports";
  let cfg =
    Pci_cfg.create ~vendor:0x8086 ~device:0x293A ~class_code:0x0C0320
      ~bars:[| Some (Pci_cfg.Mem { size = 0x1000 }) |]
      ()
  in
  Pci_cfg.add_msi_capability cfg;
  let t =
    { eng;
      dev = Device.create ~name:"ehci" ~cfg ~ops:Device.no_io;
      ports = Array.make ports None;
      portsc = Array.make ports 0;
      r_cmd = 0;
      r_sts = 0;
      r_intr = 0;
      r_async = 0;
      ticking = false;
      n_done = 0;
      n_dma_fault = 0 }
  in
  Device.set_ops t.dev
    { Device.mmio_read = (fun ~bar:_ ~off ~size:_ -> read32 t (off land lnot 3));
      mmio_write = (fun ~bar:_ ~off ~size:_ v -> write32 t (off land lnot 3) v);
      io_read = (fun ~bar:_ ~off:_ ~size -> (1 lsl (size * 8)) - 1);
      io_write = (fun ~bar:_ ~off:_ ~size:_ _ -> ());
      reset =
        (fun () ->
           t.r_cmd <- 0;
           t.r_sts <- 0;
           t.r_intr <- 0;
           t.r_async <- 0) };
  t

let device t = t.dev

let plug t ~port dev =
  if port < 0 || port >= Array.length t.ports then invalid_arg "Usb_hci_dev.plug: bad port";
  t.ports.(port) <- Some dev;
  t.portsc.(port) <- t.portsc.(port) lor portsc_connect;
  raise_irq t sts_port_change

let unplug t ~port =
  if port < 0 || port >= Array.length t.ports then invalid_arg "Usb_hci_dev.unplug: bad port";
  t.ports.(port) <- None;
  t.portsc.(port) <- t.portsc.(port) land lnot (portsc_connect lor portsc_enabled);
  raise_irq t sts_port_change

let port_device t ~port = t.ports.(port)

let transfers_completed t = t.n_done
let dma_faults t = t.n_dma_fault
