type port = {
  pname : string;
  mutable rx : bytes -> unit;
  mutable tx_free_at : int;   (* per-sender line is busy until then *)
}

type t = {
  eng : Engine.t;
  rate_bps : int;
  latency_ns : int;
  mutable ports : port list;
  mutable frames : int;
  mutable bytes : int;
}

let create eng ?(rate_bps = 1_000_000_000) ?(latency_ns = 20_000) () =
  if rate_bps <= 0 then invalid_arg "Net_medium.create: rate must be positive";
  { eng; rate_bps; latency_ns; ports = []; frames = 0; bytes = 0 }

let attach t ~name ~rx =
  let p = { pname = name; rx; tx_free_at = 0 } in
  t.ports <- t.ports @ [ p ];
  p

let set_rx port rx = port.rx <- rx

let min_frame = 60

let frame_time_ns t ~bytes =
  let bytes = max bytes min_frame in
  (* +24 bytes of preamble/FCS/IFG overhead, like real Ethernet *)
  (bytes + 24) * 8 * 1_000_000_000 / t.rate_bps

let send t port frame =
  let len = Bytes.length frame in
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + len;
  let now = Engine.now t.eng in
  let start = max now port.tx_free_at in
  let done_at = start + frame_time_ns t ~bytes:len in
  port.tx_free_at <- done_at;
  let arrival = done_at - now + t.latency_ns in
  List.iter
    (fun peer ->
       if peer != port then begin
         let copy = Bytes.copy frame in
         ignore
           (Engine.schedule_after t.eng arrival (fun () -> peer.rx copy)
            : Engine.handle)
       end)
    t.ports

let frames_sent t = t.frames
let bytes_sent t = t.bytes
