module Regs = struct
  let gctl = 0x08
  let intsts = 0x24
  let intctl = 0x20
  let icoi = 0x60
  let icii = 0x64
  let irii = 0x68

  let sd0_ctl = 0x80
  let sd0_sts = 0x84
  let sd0_lpib = 0x88
  let sd0_cbl = 0x8C
  let sd0_lvi = 0x90
  let sd0_bdpl = 0x98
  let sd0_bdpu = 0x9C

  let gctl_crst = 0x1
  let sdctl_run = 0x2
  let sdctl_ioce = 0x4
  let sdsts_bcis = 0x4
  let intsts_sd0 = 0x1

  let bdl_entry_size = 16
  let bdl_ioc = 0x1

  let verb_get_param = 0xF00
  let verb_set_power = 0x705
  let verb_set_volume = 0x300
  let verb_get_volume = 0xB00
  let param_vendor_id = 0x00
end

open Regs

type t = {
  eng : Engine.t;
  dev : Device.t;
  byte_rate : int;
  mutable r_gctl : int;
  mutable r_intsts : int;
  mutable r_intctl : int;
  mutable r_sdctl : int;
  mutable r_sdsts : int;
  mutable r_lpib : int;
  mutable r_cbl : int;
  mutable r_lvi : int;
  mutable r_bdp : int;
  mutable response : int;
  mutable response_valid : bool;
  mutable vol : int;
  mutable entry : int;          (* current BDL entry index *)
  mutable entry_left : int;     (* bytes left in current entry *)
  mutable running_tick : Engine.handle option;
  mutable played : int;
  mutable completed : int;
  mutable csum : int;
  mutable n_dma_fault : int;
}

let tick_ns = 1_000_000 (* advance the stream every millisecond *)

let raise_irq t =
  t.r_intsts <- t.r_intsts lor intsts_sd0;
  if t.r_intctl land intsts_sd0 <> 0 then
    ignore (Device.raise_msi t.dev : (unit, Bus.fault) result)

let dma_read t addr len =
  match Device.dma_read t.dev ~addr ~len with
  | Ok b -> Some b
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    None

let bdl_entry t idx =
  match dma_read t (t.r_bdp + (idx * bdl_entry_size)) bdl_entry_size with
  | None -> None
  | Some e ->
    let addr = Int64.to_int (Bytes.get_int64_le e 0) in
    let len = Int32.to_int (Bytes.get_int32_le e 8) in
    let flags = Int32.to_int (Bytes.get_int32_le e 12) in
    Some (addr, len, flags)

let consume t bytes =
  (* Walk the BDL consuming [bytes]; DMA-read each chunk (the "playback"). *)
  let left = ref bytes in
  while !left > 0 do
    if t.entry_left = 0 then begin
      match bdl_entry t t.entry with
      | Some (_, len, _) when len > 0 -> t.entry_left <- len
      | Some _ | None -> left := 0
    end;
    if !left > 0 && t.entry_left > 0 then begin
      match bdl_entry t t.entry with
      | None -> left := 0
      | Some (addr, len, flags) ->
        let off = len - t.entry_left in
        let chunk = min !left t.entry_left in
        (match dma_read t (addr + off) chunk with
         | None -> left := 0
         | Some pcm ->
           Bytes.iter (fun c -> t.csum <- (t.csum + Char.code c) land 0x3FFFFFFF) pcm;
           t.played <- t.played + chunk;
           t.r_lpib <- (t.r_lpib + chunk) mod max 1 t.r_cbl;
           t.entry_left <- t.entry_left - chunk;
           left := !left - chunk;
           if t.entry_left = 0 then begin
             t.completed <- t.completed + 1;
             if flags land bdl_ioc <> 0 && t.r_sdctl land sdctl_ioce <> 0 then begin
               t.r_sdsts <- t.r_sdsts lor sdsts_bcis;
               raise_irq t
             end;
             t.entry <- if t.entry >= t.r_lvi then 0 else t.entry + 1
           end)
    end
  done

let rec tick t =
  if t.r_sdctl land sdctl_run <> 0 then begin
    consume t (t.byte_rate * tick_ns / 1_000_000_000);
    t.running_tick <-
      Some (Engine.schedule_after t.eng tick_ns (fun () -> tick t))
  end
  else t.running_tick <- None

let start_stream t =
  if t.running_tick = None then
    t.running_tick <- Some (Engine.schedule_after t.eng tick_ns (fun () -> tick t))

let codec_exec t cmd =
  let verb = (cmd lsr 8) land 0xFFF in
  let payload = cmd land 0xFF in
  let resp =
    if verb = verb_get_param && payload = param_vendor_id then 0x11D41984
    else if verb = verb_set_power then 0
    else if verb = verb_set_volume then begin
      t.vol <- payload;
      0
    end
    else if verb = verb_get_volume then t.vol
    else 0
  in
  t.response <- resp;
  t.response_valid <- true

let reset t =
  t.r_gctl <- 0;
  t.r_intsts <- 0;
  t.r_intctl <- 0;
  t.r_sdctl <- 0;
  t.r_sdsts <- 0;
  t.r_lpib <- 0;
  t.r_cbl <- 0;
  t.r_lvi <- 0;
  t.r_bdp <- 0;
  t.response_valid <- false;
  t.entry <- 0;
  t.entry_left <- 0

let read32 t off =
  if off = gctl then t.r_gctl
  else if off = intsts then t.r_intsts
  else if off = intctl then t.r_intctl
  else if off = icii then if t.response_valid then 1 else 0
  else if off = irii then begin
    t.response_valid <- false;
    t.response
  end
  else if off = sd0_ctl then t.r_sdctl
  else if off = sd0_sts then t.r_sdsts
  else if off = sd0_lpib then t.r_lpib
  else if off = sd0_cbl then t.r_cbl
  else if off = sd0_lvi then t.r_lvi
  else if off = sd0_bdpl then t.r_bdp land 0xFFFFFFFF
  else if off = sd0_bdpu then t.r_bdp lsr 32
  else 0

let write32 t off v =
  if off = gctl then begin
    if v land gctl_crst = 0 then reset t;
    t.r_gctl <- v
  end
  else if off = intsts then t.r_intsts <- t.r_intsts land lnot v
  else if off = intctl then t.r_intctl <- v
  else if off = icoi then codec_exec t v
  else if off = sd0_ctl then begin
    let was_running = t.r_sdctl land sdctl_run <> 0 in
    t.r_sdctl <- v;
    if (not was_running) && v land sdctl_run <> 0 then start_stream t
  end
  else if off = sd0_sts then t.r_sdsts <- t.r_sdsts land lnot v
  else if off = sd0_cbl then t.r_cbl <- v
  else if off = sd0_lvi then t.r_lvi <- v
  else if off = sd0_bdpl then t.r_bdp <- t.r_bdp land lnot 0xFFFFFFFF lor v
  else if off = sd0_bdpu then t.r_bdp <- t.r_bdp land 0xFFFFFFFF lor (v lsl 32)

let create eng ?(byte_rate = 192_000) () =
  let cfg =
    Pci_cfg.create ~vendor:0x8086 ~device:0x293E ~class_code:0x040300
      ~bars:[| Some (Pci_cfg.Mem { size = 0x4000 }) |]
      ()
  in
  Pci_cfg.add_msi_capability cfg;
  let t =
    { eng;
      dev = Device.create ~name:"hda" ~cfg ~ops:Device.no_io;
      byte_rate;
      r_gctl = 0;
      r_intsts = 0;
      r_intctl = 0;
      r_sdctl = 0;
      r_sdsts = 0;
      r_lpib = 0;
      r_cbl = 0;
      r_lvi = 0;
      r_bdp = 0;
      response = 0;
      response_valid = false;
      vol = 0;
      entry = 0;
      entry_left = 0;
      running_tick = None;
      played = 0;
      completed = 0;
      csum = 0;
      n_dma_fault = 0 }
  in
  Device.set_ops t.dev
    { Device.mmio_read = (fun ~bar:_ ~off ~size:_ -> read32 t (off land lnot 3));
      mmio_write = (fun ~bar:_ ~off ~size:_ v -> write32 t (off land lnot 3) v);
      io_read = (fun ~bar:_ ~off:_ ~size -> (1 lsl (size * 8)) - 1);
      io_write = (fun ~bar:_ ~off:_ ~size:_ _ -> ());
      reset = (fun () -> reset t) };
  t

let device t = t.dev
let bytes_played t = t.played
let buffers_completed t = t.completed
let audio_checksum t = t.csum
let volume t = t.vol
