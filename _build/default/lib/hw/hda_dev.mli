(** Intel HD Audio controller model (snd-hda-intel class).

    One playback stream engine: the driver programs a buffer descriptor
    list (BDL) of DMA buffers; while running, the device consumes samples
    at the configured byte rate, DMA-reading each buffer as the position
    crosses it and raising an MSI per completed entry with IOC set —
    the period interrupts real audio drivers live on.

    A small codec behind the immediate-command mailbox answers a handful
    of verbs (vendor id, power state, volume). *)

module Regs : sig
  val gctl : int
  val intsts : int
  val intctl : int
  (** [icoi] = immediate command output; [icii] = immediate command status
      (bit0 = response valid); [irii] = immediate response input. *)

  val icoi : int
  val icii : int
  val irii : int

  val sd0_ctl : int
  val sd0_sts : int
  val sd0_lpib : int
  val sd0_cbl : int
  val sd0_lvi : int
  val sd0_bdpl : int
  val sd0_bdpu : int

  val gctl_crst : int
  val sdctl_run : int
  val sdctl_ioce : int
  val sdsts_bcis : int
  val intsts_sd0 : int

  val bdl_entry_size : int
  val bdl_ioc : int

  (** Codec verbs *)

  val verb_get_param : int
  val verb_set_power : int
  val verb_set_volume : int
  val verb_get_volume : int
  val param_vendor_id : int
end

type t

val create : Engine.t -> ?byte_rate:int -> unit -> t
(** [byte_rate] defaults to 192000 B/s (48 kHz stereo 16-bit). *)

val device : t -> Device.t
val bytes_played : t -> int
val buffers_completed : t -> int
val audio_checksum : t -> int
(** Additive checksum of every sample byte the device consumed — lets
    tests prove that the exact PCM data made it through DMA. *)

val volume : t -> int
