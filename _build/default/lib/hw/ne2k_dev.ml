module Regs = struct
  let cr = 0x00
  let pstart = 0x01
  let pstop = 0x02
  let bnry = 0x03
  let tpsr = 0x04
  let tbcr0 = 0x05
  let tbcr1 = 0x06
  let isr = 0x07
  let rsar0 = 0x08
  let rsar1 = 0x09
  let rbcr0 = 0x0A
  let rbcr1 = 0x0B
  let rcr = 0x0C
  let tcr = 0x0D
  let dcr = 0x0E
  let imr = 0x0F
  let dataport = 0x10
  let reset_port = 0x1F

  let par0 = 0x01
  let curr = 0x07

  let cr_stp = 0x01
  let cr_sta = 0x02
  let cr_txp = 0x04
  let cr_rd_read = 0x08
  let cr_rd_write = 0x10
  let cr_rd_abort = 0x20
  let cr_page1 = 0x40

  let isr_prx = 0x01
  let isr_ptx = 0x02
  let isr_rdc = 0x40

  let buffer_pages = 64 (* 16 KiB of on-card memory, pages 0x00..0x3F *)
end

open Regs

type t = {
  eng : Engine.t;
  dev : Device.t;
  buffer : bytes;               (* on-card packet memory *)
  mac_bytes : bytes;
  mutable r_cr : int;
  mutable r_pstart : int;
  mutable r_pstop : int;
  mutable r_bnry : int;
  mutable r_tpsr : int;
  mutable r_tbcr : int;
  mutable r_isr : int;
  mutable r_imr : int;
  mutable r_rsar : int;
  mutable r_rbcr : int;
  mutable r_curr : int;
  mutable par : bytes;          (* programmable MAC, page 1 *)
  port : Net_medium.port;
  medium : Net_medium.t;
  mutable n_tx : int;
  mutable n_rx : int;
  mutable n_overrun : int;
}

let raise_irq t bits =
  t.r_isr <- t.r_isr lor bits;
  if t.r_isr land t.r_imr <> 0 then ignore (Device.raise_msi t.dev : (unit, Bus.fault) result)

let buffer_size = buffer_pages * 256

(* Receive into the BNRY/CURR ring with the standard 4-byte packet header. *)
let receive t frame =
  if t.r_cr land cr_sta = 0 || t.r_pstop <= t.r_pstart then t.n_overrun <- t.n_overrun + 1
  else begin
    let len = Bytes.length frame + 4 in
    let pages_needed = (len + 255) / 256 in
    let ring_pages = t.r_pstop - t.r_pstart in
    let used =
      if t.r_curr >= t.r_bnry then t.r_curr - t.r_bnry else ring_pages - (t.r_bnry - t.r_curr)
    in
    if pages_needed >= ring_pages - used then t.n_overrun <- t.n_overrun + 1
    else begin
      let next_page cur = if cur + 1 >= t.r_pstop then t.r_pstart else cur + 1 in
      let first = t.r_curr in
      (* Compute the page following the packet. *)
      let next = ref first in
      for _ = 1 to pages_needed do next := next_page !next done;
      (* Header: status, next page pointer, length little-endian. *)
      let hdr = Bytes.create 4 in
      Bytes.set hdr 0 '\001';
      Bytes.set hdr 1 (Char.chr !next);
      Bytes.set_uint16_le hdr 2 len;
      let write_seq start_page data =
        let pos = ref (start_page * 256) and page = ref start_page and off = ref 0 in
        let n = Bytes.length data in
        while !off < n do
          if !pos land 0xff = 0 && !off > 0 then begin
            page := next_page !page;
            pos := !page * 256
          end;
          Bytes.set t.buffer !pos (Bytes.get data !off);
          incr pos;
          incr off
        done
      in
      write_seq first (Bytes.cat hdr frame);
      t.r_curr <- !next;
      t.n_rx <- t.n_rx + 1;
      raise_irq t isr_prx
    end
  end

let transmit t =
  let start = t.r_tpsr * 256 and len = t.r_tbcr in
  if len > 0 && start + len <= buffer_size then begin
    let frame = Bytes.sub t.buffer start len in
    t.n_tx <- t.n_tx + 1;
    Net_medium.send t.medium t.port frame
  end;
  t.r_cr <- t.r_cr land lnot cr_txp;
  raise_irq t isr_ptx

let page1 t = t.r_cr land cr_page1 <> 0

let io_read8 t off =
  if off = dataport then begin
    (* Remote DMA read: one byte per access. *)
    if t.r_rbcr = 0 then 0xff
    else begin
      let v = if t.r_rsar < buffer_size then Char.code (Bytes.get t.buffer t.r_rsar) else 0xff in
      t.r_rsar <- t.r_rsar + 1;
      t.r_rbcr <- t.r_rbcr - 1;
      if t.r_rbcr = 0 then raise_irq t isr_rdc;
      v
    end
  end
  else if off = reset_port then 0
  else if page1 t && off >= par0 && off < par0 + 6 then
    Char.code (Bytes.get t.par (off - par0))
  else if page1 t && off = curr then t.r_curr
  else if off = cr then t.r_cr
  else if off = isr then t.r_isr
  else if off = bnry then t.r_bnry
  else if off = pstart then t.r_pstart
  else if off = pstop then t.r_pstop
  else if off = rsar0 then t.r_rsar land 0xff
  else if off = rsar1 then t.r_rsar lsr 8
  else if off = rbcr0 then t.r_rbcr land 0xff
  else if off = rbcr1 then t.r_rbcr lsr 8
  else 0

let io_write8 t off v =
  let v = v land 0xff in
  if off = dataport then begin
    if t.r_rbcr > 0 then begin
      if t.r_rsar < buffer_size then Bytes.set t.buffer t.r_rsar (Char.chr v);
      t.r_rsar <- t.r_rsar + 1;
      t.r_rbcr <- t.r_rbcr - 1;
      if t.r_rbcr = 0 then raise_irq t isr_rdc
    end
  end
  else if off = reset_port then ()
  else if page1 t && off >= par0 && off < par0 + 6 then Bytes.set t.par (off - par0) (Char.chr v)
  else if page1 t && off = curr then t.r_curr <- v
  else if off = cr then begin
    t.r_cr <- v;
    if v land cr_rd_abort <> 0 then t.r_rbcr <- 0;
    if v land cr_txp <> 0 then
      ignore
        (Engine.schedule_after t.eng 1_000 (fun () -> transmit t)
         : Engine.handle)
  end
  else if off = pstart then t.r_pstart <- v
  else if off = pstop then t.r_pstop <- v
  else if off = bnry then t.r_bnry <- v
  else if off = tpsr then t.r_tpsr <- v
  else if off = tbcr0 then t.r_tbcr <- t.r_tbcr land 0xff00 lor v
  else if off = tbcr1 then t.r_tbcr <- t.r_tbcr land 0x00ff lor (v lsl 8)
  else if off = isr then t.r_isr <- t.r_isr land lnot v (* write-1-to-clear *)
  else if off = imr then t.r_imr <- v
  else if off = rsar0 then t.r_rsar <- t.r_rsar land 0xff00 lor v
  else if off = rsar1 then t.r_rsar <- t.r_rsar land 0x00ff lor (v lsl 8)
  else if off = rbcr0 then t.r_rbcr <- t.r_rbcr land 0xff00 lor v
  else if off = rbcr1 then t.r_rbcr <- t.r_rbcr land 0x00ff lor (v lsl 8)
  else if off = rcr || off = tcr || off = dcr then ()

let io_read t ~off ~size =
  match size with
  | 2 when off = dataport ->
    (* 16-bit dataport access transfers two bytes of remote DMA *)
    let lo = io_read8 t off in
    lo lor (io_read8 t off lsl 8)
  | _ -> io_read8 t off

let io_write t ~off ~size v =
  match size with
  | 1 -> io_write8 t off v
  | 2 when off = dataport ->
    io_write8 t off (v land 0xff);
    io_write8 t off ((v lsr 8) land 0xff)
  | _ -> io_write8 t off v

let create eng ~mac ~medium () =
  if Bytes.length mac <> 6 then invalid_arg "Ne2k_dev.create: MAC must be 6 bytes";
  let cfg =
    Pci_cfg.create ~vendor:0x10EC ~device:0x8029 ~class_code:0x020000
      ~bars:[| Some (Pci_cfg.Io { size = 0x20 }) |]
      ()
  in
  Pci_cfg.add_msi_capability cfg;
  let rec t =
    lazy
      (let dev = Device.create ~name:"ne2k" ~cfg ~ops:Device.no_io in
       let port =
         Net_medium.attach medium ~name:"ne2k" ~rx:(fun f -> receive (Lazy.force t) f)
       in
       { eng;
         dev;
         buffer = Bytes.make buffer_size '\000';
         mac_bytes = Bytes.copy mac;
         r_cr = cr_stp;
         r_pstart = 0;
         r_pstop = 0;
         r_bnry = 0;
         r_tpsr = 0;
         r_tbcr = 0;
         r_isr = 0;
         r_imr = 0;
         r_rsar = 0;
         r_rbcr = 0;
         r_curr = 0;
         par = Bytes.copy mac;
         port;
         medium;
         n_tx = 0;
         n_rx = 0;
         n_overrun = 0 })
  in
  let t = Lazy.force t in
  (* The PROM image at the start of card memory holds the MAC doubled, as
     real cards do; drivers read it via remote DMA from address 0. *)
  for i = 0 to 5 do
    Bytes.set t.buffer (2 * i) (Bytes.get mac i);
    Bytes.set t.buffer ((2 * i) + 1) (Bytes.get mac i)
  done;
  Device.set_ops t.dev
    { Device.mmio_read = (fun ~bar:_ ~off:_ ~size -> (1 lsl (size * 8)) - 1);
      mmio_write = (fun ~bar:_ ~off:_ ~size:_ _ -> ());
      io_read = (fun ~bar:_ ~off ~size -> io_read t ~off ~size);
      io_write = (fun ~bar:_ ~off ~size v -> io_write t ~off ~size v);
      reset =
        (fun () ->
           t.r_cr <- cr_stp;
           t.r_isr <- 0;
           t.r_imr <- 0) };
  t

let device t = t.dev
let mac t = Bytes.copy t.mac_bytes
let tx_frames t = t.n_tx
let rx_frames t = t.n_rx
let rx_overruns t = t.n_overrun
