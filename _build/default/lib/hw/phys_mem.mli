(** Sparse, byte-accurate physical memory with a page allocator.

    Pages materialize (zero-filled) on first touch.  Accesses beyond the
    configured size raise {!Bus_error} — the simulated equivalent of a
    machine check, which the tests use to prove that confined DMA can never
    reach unmapped territory.

    A simple region allocator hands out physically-contiguous page runs for
    kernel structures and DMA buffers. *)

exception Bus_error of int
(** Physical address out of range. *)

type t

val create : size:int -> t
(** [size] in bytes, rounded up to a page. *)

val size : t -> int

val read : t -> addr:int -> len:int -> bytes
val write : t -> addr:int -> bytes -> unit
val blit_out : t -> addr:int -> dst:bytes -> dst_off:int -> len:int -> unit
val blit_in : t -> addr:int -> src:bytes -> src_off:int -> len:int -> unit

val read8 : t -> int -> int
val read16 : t -> int -> int
val read32 : t -> int -> int
val read64 : t -> int -> int64
val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit
val write64 : t -> int -> int64 -> unit
(** Little-endian scalar accessors, matching x86. *)

val fill : t -> addr:int -> len:int -> char -> unit

val alloc_pages : t -> pages:int -> int
(** Allocate a contiguous run of zeroed pages; returns the physical address.
    Raises [Failure] when physical memory is exhausted. *)

val free_pages : t -> addr:int -> pages:int -> unit
(** Return a run to the allocator.  Freeing re-zeroes the pages, so a
    use-after-free in a driver reads zeros rather than stale secrets. *)

val allocated_pages : t -> int
(** Pages currently handed out by the allocator. *)
