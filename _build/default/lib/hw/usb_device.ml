type transfer_result = Done of bytes | Nak | Stall

type kind =
  | Keyboard of { reports : bytes Queue.t }
  | Storage of storage_state

and storage_state = {
  blocks : bytes array;
  (* Bulk-only transport state machine: after a CBW arrives on the OUT
     endpoint we owe data and/or a CSW on the IN endpoint. *)
  mutable pending_in : bytes list;     (* queued IN payloads (data, then CSW) *)
  mutable expect_out : (int * int * int) option;  (* (lba, blocks_left, tag) for WRITE *)
}

type t = { uname : string; mutable addr : int; kind : kind; mutable configured : bool }

let name t = t.uname
let address t = t.addr
let set_address t a = t.addr <- a land 0x7f

let block_size = 512

let keyboard ~name = { uname = name; addr = 0; kind = Keyboard { reports = Queue.create () }; configured = false }

let storage ~name ~blocks =
  if blocks <= 0 then invalid_arg "Usb_device.storage: need at least one block";
  { uname = name;
    addr = 0;
    kind = Storage { blocks = Array.init blocks (fun _ -> Bytes.make block_size '\000'); pending_in = []; expect_out = None };
    configured = false }

let keyboard_pending t =
  match t.kind with Keyboard { reports } -> Queue.length reports | Storage _ -> 0

let keyboard_press t ~key =
  match t.kind with
  | Keyboard { reports } ->
    let r = Bytes.make 8 '\000' in
    Bytes.set r 2 (Char.chr (key land 0xff));
    Queue.push r reports
  | Storage _ -> invalid_arg "Usb_device.keyboard_press: not a keyboard"

let storage_state t =
  match t.kind with
  | Storage s -> s
  | Keyboard _ -> invalid_arg "Usb_device: not a storage device"

let storage_peek t ~lba =
  let s = storage_state t in
  if lba < 0 || lba >= Array.length s.blocks then invalid_arg "storage_peek: bad LBA";
  Bytes.copy s.blocks.(lba)

let storage_poke t ~lba data =
  let s = storage_state t in
  if lba < 0 || lba >= Array.length s.blocks then invalid_arg "storage_poke: bad LBA";
  if Bytes.length data <> block_size then invalid_arg "storage_poke: block must be 512 bytes";
  s.blocks.(lba) <- Bytes.copy data

(* ---- standard control requests ---- *)

let device_descriptor t =
  let d = Bytes.make 18 '\000' in
  Bytes.set d 0 '\018';                    (* bLength *)
  Bytes.set d 1 '\001';                    (* DEVICE *)
  Bytes.set_uint16_le d 2 0x0200;          (* bcdUSB *)
  let cls = match t.kind with Keyboard _ -> 0x03 | Storage _ -> 0x08 in
  Bytes.set d 4 (Char.chr cls);
  Bytes.set_uint16_le d 8 0x1D6B;          (* idVendor *)
  Bytes.set_uint16_le d 10 (match t.kind with Keyboard _ -> 0x0001 | Storage _ -> 0x0002);
  Bytes.set d 17 '\001';                   (* bNumConfigurations *)
  d

let control t ~setup ~data =
  if Bytes.length setup <> 8 then Stall
  else begin
    let bm_request = Char.code (Bytes.get setup 0) in
    let b_request = Char.code (Bytes.get setup 1) in
    let w_value = Bytes.get_uint16_le setup 2 in
    let w_length = Bytes.get_uint16_le setup 6 in
    ignore data;
    match bm_request land 0x80, b_request with
    | 0x80, 0x06 ->
      (* GET_DESCRIPTOR *)
      let kind = w_value lsr 8 in
      if kind = 1 then begin
        let d = device_descriptor t in
        Done (Bytes.sub d 0 (min w_length (Bytes.length d)))
      end
      else Stall
    | 0x00, 0x05 ->
      (* SET_ADDRESS *)
      set_address t w_value;
      Done Bytes.empty
    | 0x00, 0x09 ->
      (* SET_CONFIGURATION *)
      t.configured <- true;
      Done Bytes.empty
    | _ -> Stall
  end

(* ---- SCSI over bulk-only transport ---- *)

let csw ~tag ~status =
  let c = Bytes.make 13 '\000' in
  Bytes.set_int32_le c 0 0x53425355l;      (* 'USBS' *)
  Bytes.set_int32_le c 4 (Int32.of_int tag);
  Bytes.set c 12 (Char.chr status);
  c

let scsi_execute s ~tag cb =
  let op = Char.code (Bytes.get cb 0) in
  if op = 0x00 (* TEST UNIT READY *) then s.pending_in <- [ csw ~tag ~status:0 ]
  else if op = 0x12 (* INQUIRY *) then begin
    let d = Bytes.make 36 '\000' in
    Bytes.blit_string "SUD-SIM " 0 d 8 8;
    Bytes.blit_string "Simulated Disk  " 0 d 16 16;
    s.pending_in <- [ d; csw ~tag ~status:0 ]
  end
  else if op = 0x25 (* READ CAPACITY *) then begin
    let d = Bytes.make 8 '\000' in
    Bytes.set_int32_be d 0 (Int32.of_int (Array.length s.blocks - 1));
    Bytes.set_int32_be d 4 (Int32.of_int block_size);
    s.pending_in <- [ d; csw ~tag ~status:0 ]
  end
  else if op = 0x28 (* READ(10) *) then begin
    let lba = Int32.to_int (Bytes.get_int32_be cb 2) in
    let count = Bytes.get_uint16_be cb 7 in
    if lba >= 0 && count >= 0 && lba + count <= Array.length s.blocks then begin
      let payload = Bytes.concat Bytes.empty (List.init count (fun i -> s.blocks.(lba + i))) in
      s.pending_in <- [ payload; csw ~tag ~status:0 ]
    end
    else s.pending_in <- [ csw ~tag ~status:1 ]
  end
  else if op = 0x2A (* WRITE(10) *) then begin
    let lba = Int32.to_int (Bytes.get_int32_be cb 2) in
    let count = Bytes.get_uint16_be cb 7 in
    if lba >= 0 && count > 0 && lba + count <= Array.length s.blocks then
      s.expect_out <- Some (lba, count, tag)
    else s.pending_in <- [ csw ~tag ~status:1 ]
  end
  else s.pending_in <- [ csw ~tag ~status:1 ]

let handle_bulk_out s data =
  match s.expect_out with
  | Some (lba, left, tag) ->
    (* WRITE data phase: whole blocks per transfer. *)
    let nblocks = Bytes.length data / block_size in
    let usable = min nblocks left in
    for i = 0 to usable - 1 do
      s.blocks.(lba + i) <- Bytes.sub data (i * block_size) block_size
    done;
    let left = left - usable in
    if left = 0 then begin
      s.expect_out <- None;
      s.pending_in <- [ csw ~tag ~status:0 ]
    end
    else s.expect_out <- Some (lba + usable, left, tag);
    Done Bytes.empty
  | None ->
    (* Expect a 31-byte CBW. *)
    if Bytes.length data >= 31 && Bytes.get_int32_le data 0 = 0x43425355l (* 'USBC' *) then begin
      let tag = Int32.to_int (Bytes.get_int32_le data 4) in
      let cb_len = Char.code (Bytes.get data 14) in
      let cb = Bytes.sub data 15 (min cb_len 16) in
      scsi_execute s ~tag cb;
      Done Bytes.empty
    end
    else Stall

let endpoint_out t ~ep ~data =
  match t.kind, ep with
  | Storage s, 1 -> handle_bulk_out s data
  | Storage _, _ | Keyboard _, _ -> Stall

let endpoint_in t ~ep ~len =
  match t.kind, ep with
  | Keyboard { reports }, 1 ->
    (match Queue.take_opt reports with
     | Some r -> Done (Bytes.sub r 0 (min len (Bytes.length r)))
     | None -> Nak)
  | Storage s, 2 ->
    (match s.pending_in with
     | [] -> Nak
     | x :: rest ->
       if Bytes.length x <= len then begin
         s.pending_in <- rest;
         Done x
       end
       else begin
         (* split large payloads across transfers *)
         s.pending_in <- Bytes.sub x len (Bytes.length x - len) :: rest;
         Done (Bytes.sub x 0 len)
       end)
  | Keyboard _, _ | Storage _, _ -> Stall
