(** 802.11 wireless NIC model in the style of the iwlagn 5000 series: an
    MMIO register file, firmware-load gate, a command/event mailbox for
    management operations (scan, associate, rate control) and DMA TX/RX
    rings.

    The "air" is a {!Net_medium}; access points are modelled as stations
    on that medium, with the BSS table configured at creation.  Frames
    flow only while associated, which is what exercises the wireless
    proxy's mirrored link state. *)

module Regs : sig
  val ctrl : int
  val int_sts : int
  val int_mask : int
  val fw : int
  val cmd : int
  val cmd_addr : int
  val evq : int
  val txb : int
  val txlen : int
  val txh : int
  val txt : int
  val rxb : int
  val rxlen : int
  val rxh : int
  val rxt : int
  val rate : int
  val rate_table : int
  val bss_count : int
  val bss_table : int

  val ctrl_enable : int
  val ctrl_reset : int
  val fw_magic : int
  val fw_ready : int

  val int_tx : int
  val int_rx : int
  val int_event : int

  (* mailbox command opcodes *)
  val op_scan : int
  val op_assoc : int
  val op_disassoc : int
  val op_set_rate : int

  (* event codes from the event queue *)
  val ev_none : int
  val ev_scan_done : int
  val ev_assoc_done : int
  val ev_disassoc : int
  val ev_bss_changed : int

  val desc_size : int
end

type bss = { bssid : int; ssid : string; signal_dbm : int }

type t

val create :
  Engine.t -> mac:bytes -> medium:Net_medium.t -> bss_list:bss list -> unit -> t

val device : t -> Device.t
val mac : t -> bytes
val associated : t -> int option
(** BSSID currently associated with, if any. *)

val supported_rates : int array
(** Mb/s values exposed through the rate table registers. *)

val current_rate : t -> int
val tx_frames : t -> int
val rx_frames : t -> int

val roam : t -> bssid:int -> unit
(** Force the firmware to switch BSS, queueing an [ev_bss_changed] event —
    drives the proxy's non-preemptable BSS-change path (paper §3.1.1). *)
