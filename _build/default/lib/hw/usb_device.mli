(** USB function devices that plug into the {!Usb_hci_dev} host controller:
    a HID keyboard (interrupt endpoint) and a mass-storage disk (bulk-only
    transport speaking a small SCSI subset).

    USB devices sit {e behind} the host controller: they never touch the
    PCI fabric themselves, which is why the paper's USB host proxy needs
    zero device-class code — all confinement happens at the HCI. *)

type transfer_result =
  | Done of bytes  (** completed; payload for IN transfers, empty for OUT *)
  | Nak            (** endpoint has nothing (interrupt IN polling) *)
  | Stall

type t

val name : t -> string
val address : t -> int
val set_address : t -> int -> unit

val control : t -> setup:bytes -> data:bytes -> transfer_result
(** Execute a control transfer.  [setup] is the 8-byte setup packet;
    [data] is the OUT payload if any.  Standard requests handled here:
    GET_DESCRIPTOR (device), SET_ADDRESS, SET_CONFIGURATION. *)

val endpoint_in : t -> ep:int -> len:int -> transfer_result
val endpoint_out : t -> ep:int -> data:bytes -> transfer_result

(** {1 Keyboard} *)

val keyboard : name:string -> t
val keyboard_press : t -> key:int -> unit
(** Queue a key-down report on the interrupt endpoint (EP 1 IN).
    Raises [Invalid_argument] if [t] is not a keyboard. *)

val keyboard_pending : t -> int
(** Reports still queued on the interrupt endpoint (test oracle). *)

(** {1 Mass storage} *)

val storage : name:string -> blocks:int -> t
(** A disk of 512-byte blocks, bulk-only transport on EP 1 OUT / EP 2 IN.
    SCSI subset: TEST UNIT READY, INQUIRY, READ CAPACITY(10), READ(10),
    WRITE(10). *)

val storage_peek : t -> lba:int -> bytes
(** Read a block directly from the backing store (test oracle). *)

val storage_poke : t -> lba:int -> bytes -> unit
