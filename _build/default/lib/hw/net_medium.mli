(** A full-duplex point-to-point (or small switched) Ethernet segment.

    Frames experience serialization delay at the sender's line rate plus
    propagation latency, which is what bounds streaming throughput at
    ~1 Gb/s in the Figure 8 benchmarks regardless of driver placement. *)

type t
type port

val create : Engine.t -> ?rate_bps:int -> ?latency_ns:int -> unit -> t
(** Defaults: 1 Gb/s, 20 us propagation latency. *)

val attach : t -> name:string -> rx:(bytes -> unit) -> port
(** Add a station.  [rx] is invoked (via the engine) for every frame sent
    by any other station. *)

val set_rx : port -> (bytes -> unit) -> unit
(** Replace the receive callback (used when a NIC is reset/reopened). *)

val send : t -> port -> bytes -> unit
(** Transmit a frame from this port to all other ports.  Frames shorter
    than 60 bytes are padded to the Ethernet minimum for timing purposes. *)

val frames_sent : t -> int
val bytes_sent : t -> int

val frame_time_ns : t -> bytes:int -> int
(** Serialization delay of a frame of the given size at line rate. *)
