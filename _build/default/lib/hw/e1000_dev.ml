module Regs = struct
  let ctrl = 0x0000
  let status = 0x0008
  let eerd = 0x0014
  let icr = 0x00C0
  let itr = 0x00C4
  let ics = 0x00C8
  let ims = 0x00D0
  let imc = 0x00D8
  let rctl = 0x0100
  let tctl = 0x0400
  let tdbal = 0x3800
  let tdbah = 0x3804
  let tdlen = 0x3808
  let tdh = 0x3810
  let tdt = 0x3818
  let rdbal = 0x2800
  let rdbah = 0x2804
  let rdlen = 0x2808
  let rdh = 0x2810
  let rdt = 0x2818
  let ral0 = 0x5400
  let rah0 = 0x5404

  let ctrl_rst = 1 lsl 26
  let status_lu = 1 lsl 1
  let eerd_start = 0x01
  let eerd_done = 0x10
  let rctl_en = 1 lsl 1
  let tctl_en = 1 lsl 1

  let int_txdw = 0x01
  let int_lsc = 0x04
  let int_rxt0 = 0x80

  let desc_size = 16
  let txd_cmd_eop = 0x01
  let txd_cmd_rs = 0x08
  let txd_sta_dd = 0x01
  let rxd_sta_dd = 0x01
  let rxd_sta_eop = 0x02
end

open Regs

type t = {
  eng : Engine.t;
  dev : Device.t;
  eeprom : int array;            (* 64 16-bit words; 0..2 hold the MAC *)
  mutable regs_ctrl : int;
  mutable regs_eerd : int;
  mutable regs_itr : int;        (* inter-interrupt gap in 256ns units *)
  mutable next_int_at : int;     (* ITR: earliest time the next MSI may fire *)
  mutable int_deferred : bool;
  mutable regs_icr : int;
  mutable regs_ims : int;
  mutable regs_rctl : int;
  mutable regs_tctl : int;
  mutable regs_tdba : int;
  mutable regs_tdlen : int;
  mutable regs_tdh : int;
  mutable regs_tdt : int;
  mutable regs_rdba : int;
  mutable regs_rdlen : int;
  mutable regs_rdh : int;
  mutable regs_rdt : int;
  mutable ral : int;
  mutable rah : int;
  mutable link_up : bool;
  mutable tx_busy : bool;        (* a TX processing pass is scheduled *)
  port : Net_medium.port;
  medium : Net_medium.t;
  mutable partial_tx : bytes list;  (* fragments until EOP *)
  mutable n_tx : int;
  mutable n_rx : int;
  mutable n_drop : int;
  mutable n_dma_fault : int;
  mutable n_msi : int;
}

let per_desc_delay = 250 (* ns of device-side processing per descriptor *)

let mac_of_eeprom eeprom =
  let b = Bytes.create 6 in
  for i = 0 to 2 do
    Bytes.set b (2 * i) (Char.chr (eeprom.(i) land 0xff));
    Bytes.set b ((2 * i) + 1) (Char.chr ((eeprom.(i) lsr 8) land 0xff))
  done;
  b

(* Interrupt moderation (ITR): like the real part, the device spaces MSI
   messages at least regs_itr*256ns apart; causes accumulate in ICR and
   are delivered in one (coalesced) interrupt. *)
let fire_msi t =
  t.n_msi <- t.n_msi + 1;
  t.next_int_at <- Engine.now t.eng + (t.regs_itr * 256);
  match Device.raise_msi t.dev with
  | Ok () -> ()
  | Error _ -> t.n_dma_fault <- t.n_dma_fault + 1

let rec raise_irq t cause =
  t.regs_icr <- t.regs_icr lor cause;
  if t.regs_icr land t.regs_ims <> 0 then begin
    let now = Engine.now t.eng in
    if t.regs_itr = 0 || now >= t.next_int_at then fire_msi t
    else if not t.int_deferred then begin
      t.int_deferred <- true;
      ignore
        (Engine.schedule_after t.eng (t.next_int_at - now) (fun () ->
             t.int_deferred <- false;
             raise_irq t 0)
         : Engine.handle)
    end
  end

let dma_read t addr len =
  match Device.dma_read t.dev ~addr ~len with
  | Ok b -> Some b
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    None

let dma_write t addr data =
  match Device.dma_write t.dev ~addr ~data with
  | Ok () -> true
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    false

let tx_ring_slots t = if t.regs_tdlen = 0 then 0 else t.regs_tdlen / desc_size
let rx_ring_slots t = if t.regs_rdlen = 0 then 0 else t.regs_rdlen / desc_size

(* Process TX descriptors [tdh, tdt); device-paced. *)
let rec process_tx t =
  if t.regs_tctl land tctl_en = 0 || tx_ring_slots t = 0 || t.regs_tdh = t.regs_tdt then
    t.tx_busy <- false
  else begin
    let slot = t.regs_tdh in
    let daddr = t.regs_tdba + (slot * desc_size) in
    (match dma_read t daddr desc_size with
     | None -> t.tx_busy <- false
     | Some desc ->
       let buf_addr = Int64.to_int (Bytes.get_int64_le desc 0) in
       let buf_len = Bytes.get_uint16_le desc 8 in
       let cmd = Char.code (Bytes.get desc 11) in
       (match if buf_len = 0 then Some Bytes.empty else dma_read t buf_addr buf_len with
        | None -> t.tx_busy <- false
        | Some payload ->
          t.partial_tx <- payload :: t.partial_tx;
          if cmd land txd_cmd_eop <> 0 then begin
            let frame = Bytes.concat Bytes.empty (List.rev t.partial_tx) in
            t.partial_tx <- [];
            t.n_tx <- t.n_tx + 1;
            Net_medium.send t.medium t.port frame
          end;
          if cmd land txd_cmd_rs <> 0 then begin
            Bytes.set desc 12 (Char.chr txd_sta_dd);
            ignore (dma_write t daddr desc : bool)
          end;
          t.regs_tdh <- (slot + 1) mod tx_ring_slots t;
          if t.regs_tdh = t.regs_tdt then begin
            t.tx_busy <- false;
            raise_irq t int_txdw
          end
          else
            ignore
              (Engine.schedule_after t.eng per_desc_delay (fun () -> process_tx t)
               : Engine.handle)))
  end

let kick_tx t =
  if (not t.tx_busy) && t.regs_tctl land tctl_en <> 0 then begin
    t.tx_busy <- true;
    ignore
      (Engine.schedule_after t.eng per_desc_delay (fun () -> process_tx t)
       : Engine.handle)
  end

let receive t frame =
  if t.regs_rctl land rctl_en = 0 || rx_ring_slots t = 0 || t.regs_rdh = t.regs_rdt then
    t.n_drop <- t.n_drop + 1
  else begin
    let slot = t.regs_rdh in
    let daddr = t.regs_rdba + (slot * desc_size) in
    match dma_read t daddr desc_size with
    | None -> ()
    | Some desc ->
      let buf_addr = Int64.to_int (Bytes.get_int64_le desc 0) in
      if dma_write t buf_addr frame then begin
        Bytes.set_uint16_le desc 8 (Bytes.length frame);
        Bytes.set desc 12 (Char.chr (rxd_sta_dd lor rxd_sta_eop));
        if dma_write t daddr desc then begin
          t.regs_rdh <- (slot + 1) mod rx_ring_slots t;
          t.n_rx <- t.n_rx + 1;
          raise_irq t int_rxt0
        end
      end
  end

let reset t =
  t.regs_ctrl <- 0;
  t.regs_eerd <- 0;
  t.regs_itr <- 0;
  t.next_int_at <- 0;
  t.int_deferred <- false;
  t.regs_icr <- 0;
  t.regs_ims <- 0;
  t.regs_rctl <- 0;
  t.regs_tctl <- 0;
  t.regs_tdba <- 0;
  t.regs_tdlen <- 0;
  t.regs_tdh <- 0;
  t.regs_tdt <- 0;
  t.regs_rdba <- 0;
  t.regs_rdlen <- 0;
  t.regs_rdh <- 0;
  t.regs_rdt <- 0;
  t.partial_tx <- [];
  let mac = mac_of_eeprom t.eeprom in
  t.ral <-
    Char.code (Bytes.get mac 0)
    lor (Char.code (Bytes.get mac 1) lsl 8)
    lor (Char.code (Bytes.get mac 2) lsl 16)
    lor (Char.code (Bytes.get mac 3) lsl 24);
  t.rah <- Char.code (Bytes.get mac 4) lor (Char.code (Bytes.get mac 5) lsl 8) lor 0x80000000

(* Register read without side effects (used for sub-word accesses and for
   peers reaching the register file by P2P DMA). *)
let peek t off =
  if off = ctrl then t.regs_ctrl
  else if off = status then if t.link_up then status_lu else 0
  else if off = eerd then t.regs_eerd
  else if off = itr then t.regs_itr
  else if off = icr then t.regs_icr
  else if off = ims then t.regs_ims
  else if off = rctl then t.regs_rctl
  else if off = tctl then t.regs_tctl
  else if off = tdbal then t.regs_tdba land 0xFFFFFFFF
  else if off = tdbah then t.regs_tdba lsr 32
  else if off = tdlen then t.regs_tdlen
  else if off = tdh then t.regs_tdh
  else if off = tdt then t.regs_tdt
  else if off = rdbal then t.regs_rdba land 0xFFFFFFFF
  else if off = rdbah then t.regs_rdba lsr 32
  else if off = rdlen then t.regs_rdlen
  else if off = rdh then t.regs_rdh
  else if off = rdt then t.regs_rdt
  else if off = ral0 then t.ral
  else if off = rah0 then t.rah
  else 0

let read32 t off =
  if off = icr then begin
    let v = t.regs_icr in
    t.regs_icr <- 0;
    v
  end
  else peek t off

let write32 t off v =
  let v = v land 0xFFFFFFFF in
  if off = ctrl then begin
    if v land ctrl_rst <> 0 then reset t else t.regs_ctrl <- v
  end
  else if off = eerd then begin
    if v land eerd_start <> 0 then begin
      let addr = (v lsr 8) land 0x3f in
      t.regs_eerd <- (t.eeprom.(addr) lsl 16) lor eerd_done
    end
  end
  else if off = itr then t.regs_itr <- v land 0xFFFF
  else if off = ics then raise_irq t v
  else if off = ims then t.regs_ims <- t.regs_ims lor v
  else if off = imc then t.regs_ims <- t.regs_ims land lnot v
  else if off = rctl then t.regs_rctl <- v
  else if off = tctl then begin
    t.regs_tctl <- v;
    kick_tx t
  end
  else if off = tdbal then t.regs_tdba <- t.regs_tdba land lnot 0xFFFFFFFF lor v
  else if off = tdbah then t.regs_tdba <- t.regs_tdba land 0xFFFFFFFF lor (v lsl 32)
  else if off = tdlen then t.regs_tdlen <- v
  else if off = tdh then t.regs_tdh <- v
  else if off = tdt then begin
    t.regs_tdt <- v;
    kick_tx t
  end
  else if off = rdbal then t.regs_rdba <- t.regs_rdba land lnot 0xFFFFFFFF lor v
  else if off = rdbah then t.regs_rdba <- t.regs_rdba land 0xFFFFFFFF lor (v lsl 32)
  else if off = rdlen then t.regs_rdlen <- v
  else if off = rdh then t.regs_rdh <- v
  else if off = rdt then t.regs_rdt <- v
  else if off = ral0 then t.ral <- v
  else if off = rah0 then t.rah <- v

let sub_access off size =
  let word = off land lnot 3 and shift = (off land 3) * 8 in
  let mask = ((1 lsl (size * 8)) - 1) lsl shift in
  (word, shift, mask)

let mmio_read t ~bar ~off ~size =
  if bar <> 0 then 0
  else if size = 4 && off land 3 = 0 then read32 t off
  else begin
    let word, shift, mask = sub_access off size in
    (peek t word land mask) lsr shift
  end

let mmio_write t ~bar ~off ~size v =
  if bar = 0 then begin
    if size = 4 && off land 3 = 0 then write32 t off v
    else begin
      let word, shift, mask = sub_access off size in
      let merged = peek t word land lnot mask lor ((v lsl shift) land mask) in
      write32 t word merged
    end
  end

let create eng ~mac ~medium () =
  if Bytes.length mac <> 6 then invalid_arg "E1000_dev.create: MAC must be 6 bytes";
  let cfg =
    Pci_cfg.create ~vendor:0x8086 ~device:0x10D3 ~class_code:0x020000
      ~bars:[| Some (Pci_cfg.Mem { size = 0x20000 }) |]
      ()
  in
  Pci_cfg.add_msi_capability cfg;
  let eeprom = Array.make 64 0 in
  for i = 0 to 2 do
    eeprom.(i) <-
      Char.code (Bytes.get mac (2 * i)) lor (Char.code (Bytes.get mac ((2 * i) + 1)) lsl 8)
  done;
  let rec t =
    lazy
      (let dev = Device.create ~name:"e1000" ~cfg ~ops:Device.no_io in
       let port =
         Net_medium.attach medium ~name:"e1000" ~rx:(fun frame -> receive (Lazy.force t) frame)
       in
       { eng;
         dev;
         eeprom;
         regs_ctrl = 0;
         regs_eerd = 0;
         regs_itr = 0;
         next_int_at = 0;
         int_deferred = false;
         regs_icr = 0;
         regs_ims = 0;
         regs_rctl = 0;
         regs_tctl = 0;
         regs_tdba = 0;
         regs_tdlen = 0;
         regs_tdh = 0;
         regs_tdt = 0;
         regs_rdba = 0;
         regs_rdlen = 0;
         regs_rdh = 0;
         regs_rdt = 0;
         ral = 0;
         rah = 0;
         link_up = true;
         tx_busy = false;
         port;
         medium;
         partial_tx = [];
         n_tx = 0;
         n_rx = 0;
         n_drop = 0;
         n_dma_fault = 0;
         n_msi = 0 })
  in
  let t = Lazy.force t in
  reset t;
  Device.set_ops t.dev
    { Device.mmio_read = (fun ~bar ~off ~size -> mmio_read t ~bar ~off ~size);
      mmio_write = (fun ~bar ~off ~size v -> mmio_write t ~bar ~off ~size v);
      io_read = (fun ~bar:_ ~off:_ ~size -> (1 lsl (size * 8)) - 1);
      io_write = (fun ~bar:_ ~off:_ ~size:_ _ -> ());
      reset = (fun () -> reset t) };
  t

let device t = t.dev
let mac t = mac_of_eeprom t.eeprom
let tx_frames t = t.n_tx
let rx_frames t = t.n_rx
let rx_dropped t = t.n_drop
let dma_faults t = t.n_dma_fault
let msi_raised t = t.n_msi
