(** Shared bus-level types: DMA requests, faults, BDF addressing.

    A PCI function is addressed by its BDF (bus/device/function) packed in
    an int: [bus lsl 8 lor dev lsl 3 lor fn]. *)

type bdf = int

let make_bdf ~bus ~dev ~fn =
  if bus < 0 || bus > 255 || dev < 0 || dev > 31 || fn < 0 || fn > 7 then
    invalid_arg "Bus.make_bdf";
  (bus lsl 8) lor (dev lsl 3) lor fn

let bdf_bus bdf = (bdf lsr 8) land 0xff
let bdf_dev bdf = (bdf lsr 3) land 0x1f
let bdf_fn bdf = bdf land 0x7

let pp_bdf fmt bdf =
  Format.fprintf fmt "%02x:%02x.%d" (bdf_bus bdf) (bdf_dev bdf) (bdf_fn bdf)

let string_of_bdf bdf = Format.asprintf "%a" pp_bdf bdf

type dma_dir =
  | Dma_read   (** device reads host memory *)
  | Dma_write  (** device writes host memory *)

type fault =
  | Iommu_fault of { source : bdf; addr : int; dir : dma_dir }
      (** the IOMMU had no (or no writable) mapping for the IO virtual
          address *)
  | Acs_blocked of { source : bdf; addr : int }
      (** a peer-to-peer transaction was redirected/blocked by PCIe ACS *)
  | Source_invalid of { claimed : bdf; port : bdf }
      (** ACS source validation caught a spoofed requester ID *)
  | Bus_abort of { addr : int }
      (** the address decodes to no target (master abort) *)
  | Ir_blocked of { source : bdf; vector : int }
      (** the interrupt-remapping table rejected an MSI message *)

let pp_fault fmt = function
  | Iommu_fault { source; addr; dir } ->
    Format.fprintf fmt "IOMMU fault: %a %s iova 0x%x" pp_bdf source
      (match dir with Dma_read -> "read" | Dma_write -> "write")
      addr
  | Acs_blocked { source; addr } ->
    Format.fprintf fmt "ACS blocked: %a -> 0x%x" pp_bdf source addr
  | Source_invalid { claimed; port } ->
    Format.fprintf fmt "source validation: %a claimed at port %a" pp_bdf claimed pp_bdf port
  | Bus_abort { addr } -> Format.fprintf fmt "master abort at 0x%x" addr
  | Ir_blocked { source; vector } ->
    Format.fprintf fmt "interrupt remap blocked: %a vector %d" pp_bdf source vector

let string_of_fault f = Format.asprintf "%a" pp_fault f

(** The x86 MSI address window: memory writes here become interrupts. *)
let msi_window_base = 0xFEE00000
let msi_window_limit = 0xFEF00000

let in_msi_window addr = addr >= msi_window_base && addr < msi_window_limit

let page_size = 4096
let page_mask = page_size - 1
let page_align_down addr = addr land lnot page_mask
let page_align_up addr = (addr + page_mask) land lnot page_mask
let is_page_aligned addr = addr land page_mask = 0
