exception General_protection of int

type range = {
  base : int;
  len : int;
  rd : off:int -> size:int -> int;
  wr : off:int -> size:int -> int -> unit;
}

type t = { mutable ranges : range list }

let port_space = 0x10000

let create () = { ranges = [] }

let overlaps a b = a.base < b.base + b.len && b.base < a.base + a.len

let register t ~base ~len ~read ~write =
  if base < 0 || len <= 0 || base + len > port_space then
    invalid_arg "Ioport.register: out of port space";
  let r = { base; len; rd = read; wr = write } in
  if List.exists (overlaps r) t.ranges then invalid_arg "Ioport.register: overlap";
  t.ranges <- r :: t.ranges

let unregister t ~base = t.ranges <- List.filter (fun r -> r.base <> base) t.ranges

let find t port = List.find_opt (fun r -> port >= r.base && port < r.base + r.len) t.ranges

module Iopb = struct
  type t = { bits : Bytes.t; mutable allow_all : bool }

  let none () = { bits = Bytes.make (port_space / 8) '\000'; allow_all = false }
  let all () = { bits = Bytes.make (port_space / 8) '\000'; allow_all = true }

  let set t port v =
    let byte = port / 8 and bit = port mod 8 in
    let cur = Char.code (Bytes.get t.bits byte) in
    let nxt = if v then cur lor (1 lsl bit) else cur land lnot (1 lsl bit) in
    Bytes.set t.bits byte (Char.chr nxt)

  let get t port = Char.code (Bytes.get t.bits (port / 8)) land (1 lsl (port mod 8)) <> 0

  let grant t ~base ~len =
    if base < 0 || len <= 0 || base + len > port_space then invalid_arg "Iopb.grant";
    for p = base to base + len - 1 do set t p true done

  let revoke t ~base ~len =
    if base < 0 || len <= 0 || base + len > port_space then invalid_arg "Iopb.revoke";
    for p = base to base + len - 1 do set t p false done

  let allows t ~port ~size =
    t.allow_all
    || (port >= 0 && port + size <= port_space
        && (let ok = ref true in
            for p = port to port + size - 1 do
              if not (get t p) then ok := false
            done;
            !ok))

  let granted_ranges t =
    if t.allow_all then [ (0, port_space) ]
    else begin
      let runs = ref [] and start = ref (-1) in
      for p = 0 to port_space - 1 do
        if get t p then begin
          if !start < 0 then start := p
        end
        else if !start >= 0 then begin
          runs := (!start, p - !start) :: !runs;
          start := -1
        end
      done;
      if !start >= 0 then runs := (!start, port_space - !start) :: !runs;
      List.rev !runs
    end
end

let check iopb port size =
  if not (Iopb.allows iopb ~port ~size) then raise (General_protection port)

let read t ~iopb ~port ~size =
  check iopb port size;
  match find t port with
  | None -> (1 lsl (size * 8)) - 1
  | Some r -> r.rd ~off:(port - r.base) ~size

let write t ~iopb ~port ~size v =
  check iopb port size;
  match find t port with
  | None -> ()
  | Some r -> r.wr ~off:(port - r.base) ~size v
