module Regs = struct
  let usbcmd = 0x00
  let usbsts = 0x02
  let usbintr = 0x04
  let frnum = 0x06
  let frbaseadd = 0x08
  let portsc1 = 0x10

  let cmd_rs = 0x1
  let sts_int = 0x1
  let portsc_connect = 0x1
  let portsc_enabled = 0x4
  let portsc_reset = 0x200

  let pid_setup = 0x2D
  let pid_in = 0x69
  let pid_out = 0xE1

  let td_size = 32
  let td_active = 1 lsl 23
  let td_stalled = 1 lsl 22
  let td_ioc = 1 lsl 24
  let lp_terminate = 1
  let frame_entries = 1024
end

open Regs

type t = {
  eng : Engine.t;
  dev : Device.t;
  ports : Usb_device.t option array;
  portsc : int array;
  mutable r_cmd : int;
  mutable r_sts : int;
  mutable r_intr : int;
  mutable r_frnum : int;
  mutable r_frbase : int;
  mutable ticking : bool;
  mutable n_done : int;
  mutable n_dma_fault : int;
  (* Setup packets must precede the data stage; remember the last SETUP per
     device address, as the function's "control pipe state". *)
  pending_setup : (int, bytes) Hashtbl.t;
}

let frame_ns = 1_000_000

let raise_irq t =
  t.r_sts <- t.r_sts lor sts_int;
  if t.r_intr land 1 <> 0 then ignore (Device.raise_msi t.dev : (unit, Bus.fault) result)

let dma_read t addr len =
  match Device.dma_read t.dev ~addr ~len with
  | Ok b -> Some b
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    None

let dma_write t addr data =
  match Device.dma_write t.dev ~addr ~data with
  | Ok () -> true
  | Error _ ->
    t.n_dma_fault <- t.n_dma_fault + 1;
    false

let find_by_address t addr =
  Array.to_list t.ports
  |> List.filter_map Fun.id
  |> List.find_opt (fun d -> Usb_device.address d = addr)

(* Execute one TD; Some (status_bits, actual_len) to complete, None to
   leave active (NAK). *)
let execute t ~pid ~devaddr ~ep ~maxlen ~buf =
  match find_by_address t devaddr with
  | None -> Some (td_stalled, 0)
  | Some dev ->
    if pid = pid_setup then begin
      match dma_read t buf 8 with
      | None -> Some (td_stalled, 0)
      | Some setup ->
        Hashtbl.replace t.pending_setup devaddr setup;
        let w_length = Bytes.get_uint16_le setup 6 in
        let dir_in = Char.code (Bytes.get setup 0) land 0x80 <> 0 in
        if w_length = 0 || not dir_in then begin
          (* No IN data stage expected through a separate TD in our
             simplified driver: OUT-data control requests carry their data
             right after the setup in the same buffer. *)
          let out_data =
            if w_length > 0 then
              Option.value ~default:Bytes.empty (dma_read t (buf + 8) w_length)
            else Bytes.empty
          in
          match Usb_device.control dev ~setup ~data:out_data with
          | Usb_device.Done _ -> Some (0, 8)
          | Usb_device.Nak -> None
          | Usb_device.Stall -> Some (td_stalled, 0)
        end
        else Some (0, 8)   (* IN data arrives via the next IN TD *)
    end
    else if pid = pid_in then begin
      (* Either the data stage of a pending control transfer, or a plain
         endpoint IN. *)
      match Hashtbl.find_opt t.pending_setup devaddr with
      | Some setup when ep = 0 ->
        Hashtbl.remove t.pending_setup devaddr;
        (match Usb_device.control dev ~setup ~data:Bytes.empty with
         | Usb_device.Done payload ->
           let n = min maxlen (Bytes.length payload) in
           if n = 0 || dma_write t buf (Bytes.sub payload 0 n) then Some (0, n)
           else Some (td_stalled, 0)
         | Usb_device.Nak -> None
         | Usb_device.Stall -> Some (td_stalled, 0))
      | _ ->
        (match Usb_device.endpoint_in dev ~ep ~len:maxlen with
         | Usb_device.Done payload ->
           if Bytes.length payload = 0 || dma_write t buf payload then
             Some (0, Bytes.length payload)
           else Some (td_stalled, 0)
         | Usb_device.Nak -> None
         | Usb_device.Stall -> Some (td_stalled, 0))
    end
    else if pid = pid_out then begin
      match dma_read t buf maxlen with
      | None -> Some (td_stalled, 0)
      | Some data ->
        (match Usb_device.endpoint_out dev ~ep ~data with
         | Usb_device.Done _ -> Some (0, maxlen)
         | Usb_device.Nak -> None
         | Usb_device.Stall -> Some (td_stalled, 0))
    end
    else Some (td_stalled, 0)

let process_td t td_addr =
  match dma_read t td_addr td_size with
  | None -> 0
  | Some td ->
    let link = Int32.to_int (Bytes.get_int32_le td 0) land 0xFFFFFFFF in
    let ctrl = Int32.to_int (Bytes.get_int32_le td 4) land 0xFFFFFFFF in
    if ctrl land td_active = 0 then link
    else begin
      let token = Int32.to_int (Bytes.get_int32_le td 8) land 0xFFFFFFFF in
      let pid = token land 0xFF in
      let devaddr = (token lsr 8) land 0x7F in
      let ep = (token lsr 15) land 0xF in
      let maxlen = (token lsr 21) land 0x7FF in
      let buf = Int32.to_int (Bytes.get_int32_le td 12) land 0xFFFFFFFF in
      (match execute t ~pid ~devaddr ~ep ~maxlen ~buf with
       | None -> ()   (* NAK: stay active, retried next frame *)
       | Some (status, actual) ->
         let ctrl' = ctrl land lnot td_active lor status lor (actual land 0x7FF) in
         Bytes.set_int32_le td 4 (Int32.of_int ctrl');
         if dma_write t td_addr td then begin
           t.n_done <- t.n_done + 1;
           if ctrl land td_ioc <> 0 then raise_irq t
         end);
      link
    end

let rec tick t =
  if t.r_cmd land cmd_rs <> 0 then begin
    if t.r_frbase <> 0 then begin
      let slot = t.r_frnum land (frame_entries - 1) in
      match dma_read t (t.r_frbase + (4 * slot)) 4 with
      | None -> ()
      | Some e ->
        let ptr = Int32.to_int (Bytes.get_int32_le e 0) land 0xFFFFFFFF in
        (* Walk the TD chain, bounded. *)
        let rec walk addr budget =
          if addr land lp_terminate = 0 && addr <> 0 && budget > 0 then begin
            let next = process_td t (addr land lnot 0xF) in
            walk next (budget - 1)
          end
        in
        walk ptr 32
    end;
    t.r_frnum <- (t.r_frnum + 1) land 0x7FF;
    ignore (Engine.schedule_after t.eng frame_ns (fun () -> tick t) : Engine.handle)
  end
  else t.ticking <- false

let start t =
  if not t.ticking then begin
    t.ticking <- true;
    ignore (Engine.schedule_after t.eng frame_ns (fun () -> tick t) : Engine.handle)
  end

let io_read t off size =
  let v =
    if off = usbcmd then t.r_cmd
    else if off = usbsts then t.r_sts
    else if off = usbintr then t.r_intr
    else if off = frnum then t.r_frnum
    else if off = frbaseadd then t.r_frbase
    else if off = frbaseadd + 2 then t.r_frbase lsr 16
    else if off >= portsc1 && off < portsc1 + (2 * Array.length t.portsc) then
      t.portsc.((off - portsc1) / 2)
    else 0xFFFF
  in
  v land ((1 lsl (size * 8)) - 1)

let io_write t off size v =
  if off = usbcmd then begin
    t.r_cmd <- v;
    if v land cmd_rs <> 0 then start t
  end
  else if off = usbsts then t.r_sts <- t.r_sts land lnot v
  else if off = usbintr then t.r_intr <- v
  else if off = frnum then t.r_frnum <- v land 0x7FF
  else if off = frbaseadd then
    if size = 4 then t.r_frbase <- v land 0xFFFFF000
    else t.r_frbase <- t.r_frbase land 0xFFFF0000 lor (v land 0xF000)
  else if off = frbaseadd + 2 then t.r_frbase <- t.r_frbase land 0xFFFF lor (v lsl 16)
  else if off >= portsc1 && off < portsc1 + (2 * Array.length t.portsc) then begin
    let p = (off - portsc1) / 2 in
    if v land portsc_reset <> 0 then begin
      (match t.ports.(p) with Some d -> Usb_device.set_address d 0 | None -> ());
      t.portsc.(p) <- t.portsc.(p) land lnot portsc_reset lor portsc_enabled
    end
  end

let create eng ~ports () =
  if ports <= 0 || ports > 4 then invalid_arg "Uhci_dev.create: 1..4 ports";
  let cfg =
    Pci_cfg.create ~vendor:0x8086 ~device:0x2934 ~class_code:0x0C0300
      ~bars:[| Some (Pci_cfg.Io { size = 0x20 }) |]
      ()
  in
  Pci_cfg.add_msi_capability cfg;
  let t =
    { eng;
      dev = Device.create ~name:"uhci" ~cfg ~ops:Device.no_io;
      ports = Array.make ports None;
      portsc = Array.make ports 0;
      r_cmd = 0;
      r_sts = 0;
      r_intr = 0;
      r_frnum = 0;
      r_frbase = 0;
      ticking = false;
      n_done = 0;
      n_dma_fault = 0;
      pending_setup = Hashtbl.create 4 }
  in
  Device.set_ops t.dev
    { Device.mmio_read = (fun ~bar:_ ~off:_ ~size -> (1 lsl (size * 8)) - 1);
      mmio_write = (fun ~bar:_ ~off:_ ~size:_ _ -> ());
      io_read = (fun ~bar:_ ~off ~size -> io_read t off size);
      io_write = (fun ~bar:_ ~off ~size v -> io_write t off size v);
      reset =
        (fun () ->
           t.r_cmd <- 0;
           t.r_sts <- 0;
           t.r_intr <- 0;
           t.r_frnum <- 0;
           t.r_frbase <- 0;
           Hashtbl.reset t.pending_setup) };
  t

let device t = t.dev

let plug t ~port dev =
  if port < 0 || port >= Array.length t.ports then invalid_arg "Uhci_dev.plug: bad port";
  t.ports.(port) <- Some dev;
  t.portsc.(port) <- t.portsc.(port) lor portsc_connect;
  raise_irq t

let unplug t ~port =
  if port < 0 || port >= Array.length t.ports then invalid_arg "Uhci_dev.unplug: bad port";
  t.ports.(port) <- None;
  t.portsc.(port) <- t.portsc.(port) land lnot (portsc_connect lor portsc_enabled)

let transfers_completed t = t.n_done
let dma_faults t = t.n_dma_fault
