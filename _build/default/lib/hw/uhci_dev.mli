(** UHCI-class USB host controller — the other HCI the paper ran.

    Where the EHCI model is MMIO + async queue heads, UHCI is all legacy
    IO ports and a 1024-entry {e frame list} of transfer descriptors walked
    once per millisecond frame, and it is a 32-bit-only DMA master.  Under
    SUD it therefore exercises the IOPB path {e and} the IOMMU at once.

    Transfer descriptor (32 bytes, 32-bit fields, as in the real part but
    simplified):
    {v
    +0  link pointer (bit0 = terminate)
    +4  control/status: bit23 active, bit22 stalled, bit24 IOC,
        bits0-10 actual length on completion
    +8  token: PID (0x2D setup, 0x69 in, 0xE1 out) | devaddr<<8 |
        endpoint<<15 | maxlen<<21
    +12 buffer pointer
    v} *)

module Regs : sig
  val usbcmd : int
  val usbsts : int
  val usbintr : int
  val frnum : int
  val frbaseadd : int
  val portsc1 : int

  val cmd_rs : int
  val sts_int : int
  val portsc_connect : int
  val portsc_enabled : int
  val portsc_reset : int

  val pid_setup : int
  val pid_in : int
  val pid_out : int

  val td_size : int
  val td_active : int
  val td_stalled : int
  val td_ioc : int
  val lp_terminate : int
  val frame_entries : int
end

type t

val create : Engine.t -> ports:int -> unit -> t
val device : t -> Device.t
val plug : t -> port:int -> Usb_device.t -> unit
val unplug : t -> port:int -> unit
val transfers_completed : t -> int
val dma_faults : t -> int
