(** NE2000-class Ethernet controller (DP8390 core) driven entirely by
    legacy IO ports — no bus mastering at all.

    The contrast device for SUD: confining it needs only the IOPB (no
    IOMMU mappings), and its Figure 9 equivalent is an empty page table.
    One liberty vs. the 1990s part: our simulated card is the PCIe variant
    and signals completions by MSI, since SUD forbids shared legacy
    interrupt lines (paper §3.2.2).

    Register model (offsets from the IO BAR): page 0/1 of the DP8390
    register file, a 16 KiB on-card packet buffer reachable through the
    remote-DMA data port, and the classic PSTART/PSTOP receive ring. *)

module Regs : sig
  val cr : int
  val pstart : int
  val pstop : int
  val bnry : int
  val tpsr : int
  val tbcr0 : int
  val tbcr1 : int
  val isr : int
  val rsar0 : int
  val rsar1 : int
  val rbcr0 : int
  val rbcr1 : int
  val rcr : int
  val tcr : int
  val dcr : int
  val imr : int
  val dataport : int
  val reset_port : int

  (* page 1 *)
  val par0 : int
  val curr : int

  (* CR bits *)
  val cr_stp : int
  val cr_sta : int
  val cr_txp : int
  val cr_rd_read : int
  val cr_rd_write : int
  val cr_rd_abort : int
  val cr_page1 : int

  (* ISR bits *)
  val isr_prx : int
  val isr_ptx : int
  val isr_rdc : int

  val buffer_pages : int
  (** Total 256-byte pages of on-card memory. *)
end

type t

val create : Engine.t -> mac:bytes -> medium:Net_medium.t -> unit -> t

val device : t -> Device.t
val mac : t -> bytes
val tx_frames : t -> int
val rx_frames : t -> int
val rx_overruns : t -> int
