(** Legacy x86 IO-port space (64 K ports).

    Devices claim port ranges; the CPU side accesses ports through an
    access check that models the TSS IO-permission bitmap (IOPB): the
    kernel runs with full access, while user processes only reach ports
    SUD granted them. *)

type t

exception General_protection of int
(** Access to a port not present in the caller's permission bitmap. *)

val create : unit -> t

val register :
  t -> base:int -> len:int ->
  read:(off:int -> size:int -> int) ->
  write:(off:int -> size:int -> int -> unit) ->
  unit
(** Claim [base, base+len).  Raises [Invalid_argument] on overlap. *)

val unregister : t -> base:int -> unit

module Iopb : sig
  (** A task's IO-permission bitmap. *)

  type t

  val none : unit -> t
  (** No ports allowed (fresh user task). *)

  val all : unit -> t
  (** Every port allowed (kernel / IOPL 3). *)

  val grant : t -> base:int -> len:int -> unit
  val revoke : t -> base:int -> len:int -> unit
  val allows : t -> port:int -> size:int -> bool
  val granted_ranges : t -> (int * int) list
  (** Granted (base, len) runs, merged and sorted. *)
end

val read : t -> iopb:Iopb.t -> port:int -> size:int -> int
(** Raises {!General_protection} if the IOPB forbids the access; reads of
    unclaimed ports return all-1s (floating bus). *)

val write : t -> iopb:Iopb.t -> port:int -> size:int -> int -> unit
