lib/hw/pci_cfg.mli:
