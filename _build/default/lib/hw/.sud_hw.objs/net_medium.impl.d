lib/hw/net_medium.ml: Bytes Engine List
