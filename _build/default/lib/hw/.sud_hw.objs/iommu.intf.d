lib/hw/iommu.mli: Bus
