lib/hw/e1000_dev.ml: Array Bytes Char Device Engine Int64 Lazy List Net_medium Pci_cfg
