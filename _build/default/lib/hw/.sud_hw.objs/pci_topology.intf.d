lib/hw/pci_topology.mli: Bus Device Iommu Ioport Phys_mem
