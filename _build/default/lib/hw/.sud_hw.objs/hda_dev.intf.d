lib/hw/hda_dev.mli: Device Engine
