lib/hw/usb_hci_dev.mli: Device Engine Usb_device
