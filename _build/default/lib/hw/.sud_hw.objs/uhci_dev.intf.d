lib/hw/uhci_dev.mli: Device Engine Usb_device
