lib/hw/ioport.ml: Bytes Char List
