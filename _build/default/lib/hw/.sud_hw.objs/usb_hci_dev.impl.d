lib/hw/usb_hci_dev.ml: Array Bus Bytes Char Device Engine Fun Int32 Int64 List Option Pci_cfg Usb_device
