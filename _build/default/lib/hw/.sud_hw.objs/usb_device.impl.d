lib/hw/usb_device.ml: Array Bytes Char Int32 List Queue
