lib/hw/bus.ml: Format
