lib/hw/pci_cfg.ml: Array Bus Bytes Char
