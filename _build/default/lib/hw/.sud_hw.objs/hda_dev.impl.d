lib/hw/hda_dev.ml: Bus Bytes Char Device Engine Int32 Int64 Pci_cfg
