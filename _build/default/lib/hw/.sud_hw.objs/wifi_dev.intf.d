lib/hw/wifi_dev.mli: Device Engine Net_medium
