lib/hw/pci_topology.ml: Bus Bytes Char Device Int32 Iommu Ioport List Option Pci_cfg Phys_mem
