lib/hw/usb_device.mli:
