lib/hw/net_medium.mli: Engine
