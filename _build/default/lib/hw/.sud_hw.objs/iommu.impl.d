lib/hw/iommu.ml: Array Bus Hashtbl List
