lib/hw/ne2k_dev.mli: Device Engine Net_medium
