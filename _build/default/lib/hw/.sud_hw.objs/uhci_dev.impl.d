lib/hw/uhci_dev.ml: Array Bus Bytes Char Device Engine Fun Hashtbl Int32 List Option Pci_cfg Usb_device
