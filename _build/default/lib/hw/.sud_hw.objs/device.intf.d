lib/hw/device.mli: Bus Pci_cfg
