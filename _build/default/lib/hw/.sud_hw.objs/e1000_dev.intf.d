lib/hw/e1000_dev.mli: Device Engine Net_medium
