lib/hw/ioport.mli:
