lib/hw/phys_mem.ml: Bus Bytes Char Hashtbl Int64 Option
