lib/hw/device.ml: Bus Bytes Int32 Pci_cfg
