lib/hw/ne2k_dev.ml: Bus Bytes Char Device Engine Lazy Net_medium Pci_cfg
