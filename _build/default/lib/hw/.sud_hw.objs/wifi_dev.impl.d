lib/hw/wifi_dev.ml: Array Bus Bytes Device Engine Int32 Int64 Lazy List Net_medium Pci_cfg Queue
