(** EHCI-like USB host controller.

    The schedule lives in host memory and is fetched by DMA, exactly the
    property SUD cares about: a malicious USB driver can point queue heads
    or transfer buffers at arbitrary addresses, and the only thing standing
    between the HC's DMA engine and kernel memory is the IOMMU.

    Simplified schedule format (32-byte aligned structures):

    Queue head (QH), 32 bytes:
    {v
    +0  next QH pointer (8 bytes, 0 = end of list)
    +8  device address (1), endpoint (1), type (1: 0=control 2=bulk 3=intr),
        direction (1: 0=OUT 1=IN)
    +16 first qTD pointer (8 bytes, 0 = none)
    v}

    Transfer descriptor (qTD), 32 bytes:
    {v
    +0  next qTD pointer (8)
    +8  flags (1: bit0 active, bit1 IOC), status (1: 0=ok 1=stall),
        reserved (2), total length (4)
    +16 buffer address (8)
    +24 actual length transferred (4), reserved (4)
    v}

    Control transfers carry the 8-byte setup packet at the start of the
    buffer, followed by the data stage area.  The HC walks the async list
    every 125 us microframe, completing at most one qTD per QH per frame;
    NAKed interrupt transfers stay active and are retried. *)

module Regs : sig
  val usbcmd : int
  val usbsts : int
  val usbintr : int
  val asynclistaddr : int
  val portsc0 : int

  val cmd_run : int
  val sts_int : int
  val sts_port_change : int
  val intr_enable : int
  val portsc_connect : int
  val portsc_enabled : int
  val portsc_reset : int

  val qh_size : int
  val qtd_size : int
  val qtd_active : int
  val qtd_ioc : int

  val ep_type_control : int
  val ep_type_bulk : int
  val ep_type_interrupt : int
end

type t

val create : Engine.t -> ports:int -> unit -> t
val device : t -> Device.t

val plug : t -> port:int -> Usb_device.t -> unit
(** Connect a USB device; sets the port's connect bit and raises a
    port-change interrupt. *)

val unplug : t -> port:int -> unit
val port_device : t -> port:int -> Usb_device.t option

val transfers_completed : t -> int
val dma_faults : t -> int
