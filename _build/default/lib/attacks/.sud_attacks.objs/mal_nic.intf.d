lib/attacks/mal_nic.mli: Driver_api
