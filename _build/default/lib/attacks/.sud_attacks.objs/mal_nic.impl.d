lib/attacks/mal_nic.ml: Bytes Char Driver_api E1000_dev Int64
