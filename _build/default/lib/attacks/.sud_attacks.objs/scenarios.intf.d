lib/attacks/scenarios.mli: Iommu
