(** Toolkit for building malicious e1000 drivers.

    A malicious driver looks like a normal driver to SUD — it probes, maps
    its BAR, allocates DMA memory and registers a MAC — but its [ni_open]
    runs an attack payload with full access to the driver-visible
    resources.  The attacks in {!Attacks} are built from this. *)

type toolkit = {
  env : Driver_api.env;
  pdev : Driver_api.pcidev;
  cb : Driver_api.net_callbacks;
  mmio : Driver_api.mmio;
  ring : Driver_api.dma_region;    (** one page of descriptors *)
  buf : Driver_api.dma_region;     (** one page of payload scratch *)
}

val reg_write : toolkit -> int -> int -> unit
val reg_read : toolkit -> int -> int

val dma_read_via_tx : toolkit -> target:int -> len:int -> unit
(** Program a TX descriptor whose buffer address is [target]: the device
    will DMA-read that address and put the bytes on the wire —
    exfiltration if the IOMMU lets it through. *)

val dma_write_via_rx : toolkit -> target:int -> unit
(** Program an RX descriptor whose buffer address is [target] and enable
    the receiver: the next incoming frame is DMA-written over [target]. *)

val driver :
  ?name:string ->
  on_open:(toolkit -> (unit, string) result) ->
  unit ->
  Driver_api.net_driver
(** A driver whose probe succeeds innocuously and whose open runs
    [on_open]. *)
