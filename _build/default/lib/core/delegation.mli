(** Device delegation (paper §6, future work): instead of the administrator
    starting each driver by hand, a bus manager scans the PCI bus and starts
    a separate untrusted driver process for every device it has a driver
    for — each under its own UID, so drivers cannot interfere with one
    another even through SUD's own interfaces. *)

type registry_entry =
  | Net of Driver_api.net_driver
  | Wifi of Driver_api.wifi_driver
  | Audio of Driver_api.audio_driver

type started =
  | Started_net of Driver_host.started
  | Started_wifi of Driver_host.started_wifi
  | Started_audio of Driver_host.started_audio

val scan_and_start :
  Kernel.t ->
  Safe_pci.t ->
  ?base_uid:int ->
  registry:registry_entry list ->
  unit ->
  (Bus.bdf * string * (started, string) result) list
(** Walk sysfs; for each device matching a registry entry, allocate a fresh
    UID (from [base_uid], default 2000, incrementing) and start the driver.
    Returns one row per matched device: its BDF, the driver name, and the
    start outcome.  Devices without a registered driver are skipped.
    Must run in a fiber. *)

val name_of_entry : registry_entry -> string
val ids_of_entry : registry_entry -> (int * int) list
