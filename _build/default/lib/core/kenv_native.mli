(** Trusted in-kernel driver environment.

    Builds {!Driver_api.env}/{!Driver_api.pcidev} with direct hardware
    access — no IOMMU domain, no config filtering, interrupts dispatched
    straight to the handler.  This is how the paper's baseline ("kernel
    driver" rows of Figure 8) runs: the driver is fully trusted, and a
    malicious one owns the machine. *)

val env : Kernel.t -> label:string -> Driver_api.env

val pcidev : Kernel.t -> Bus.bdf -> label:string -> (Driver_api.pcidev, string) result
(** [label] is the CPU-accounting bucket (e.g. "kernel:e1000"). *)
