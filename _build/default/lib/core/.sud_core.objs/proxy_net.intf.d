lib/core/proxy_net.mli: Bufpool Kernel Msg Netdev Safe_pci Uchan
