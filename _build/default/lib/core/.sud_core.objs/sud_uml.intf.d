lib/core/sud_uml.mli: Bufpool Driver_api Kernel Process Safe_pci Uchan
