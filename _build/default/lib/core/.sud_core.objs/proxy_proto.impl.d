lib/core/proxy_proto.ml: Printf
