lib/core/safe_pci.mli: Bus Driver_api Kernel Process
