lib/core/driver_api.ml: Bus Bytes Cpu Fiber Int32
