lib/core/safe_pci.ml: Bus Bytes Cost_model Cpu Device Driver_api Hashtbl Iommu Ioport Irq Kernel Klog List Pci_cfg Pci_topology Phys_mem Printf Process
