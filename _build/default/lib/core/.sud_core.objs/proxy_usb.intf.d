lib/core/proxy_usb.mli: Bufpool Kernel Safe_pci Uchan
