lib/core/kenv_native.ml: Bus Bytes Cost_model Cpu Device Driver_api Engine Fiber Iommu Ioport Irq Kernel Klog Pci_cfg Pci_topology Phys_mem Printf Process
