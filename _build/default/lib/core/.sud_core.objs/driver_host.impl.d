lib/core/driver_host.ml: Bufpool Bus Driver_api Fiber Kernel Netdev Option Process Proxy_audio Proxy_net Proxy_usb Proxy_wifi Safe_pci Sud_uml Sysfs Uchan
