lib/core/proxy_wifi.ml: Bytes Engine Fiber Kernel List Msg Proxy_net Proxy_proto Sync Uchan
