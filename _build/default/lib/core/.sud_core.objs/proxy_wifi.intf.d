lib/core/proxy_wifi.mli: Bufpool Kernel Netdev Proxy_net Safe_pci Uchan
