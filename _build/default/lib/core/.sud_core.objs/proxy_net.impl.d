lib/core/proxy_net.ml: Bufpool Bytes Cost_model Cpu Driver_api Engine Fiber Kernel Klog Msg Netdev Netstack Proxy_proto Safe_pci Skbuff Sync Uchan
