lib/core/shadow.mli: Driver_api Driver_host Kernel Netdev Safe_pci
