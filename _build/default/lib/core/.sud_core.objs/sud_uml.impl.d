lib/core/sud_uml.ml: Bufpool Bytes Driver_api Engine Fiber Kernel List Msg Pci_cfg Printf Process Proxy_proto Safe_pci Sync Uchan
