lib/core/native_net.mli: Bus Driver_api Kernel Netdev
