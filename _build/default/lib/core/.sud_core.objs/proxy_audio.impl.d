lib/core/proxy_audio.ml: Bufpool Bytes Engine Fiber Kernel Klog Msg Proxy_proto Result Safe_pci Sync Uchan
