lib/core/driver_api.mli: Bus Cpu
