lib/core/delegation.ml: Driver_api Driver_host Kernel List Printf Result Sysfs
