lib/core/delegation.mli: Bus Driver_api Driver_host Kernel Safe_pci
