lib/core/proxy_audio.mli: Bufpool Kernel Safe_pci Uchan
