lib/core/driver_host.mli: Bus Driver_api Kernel Netdev Process Proxy_audio Proxy_net Proxy_usb Proxy_wifi Safe_pci Sud_uml Uchan
