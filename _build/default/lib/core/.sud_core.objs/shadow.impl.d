lib/core/shadow.ml: Bus Driver_api Driver_host Fiber Kernel Klog Netdev Netstack Process Proxy_net Safe_pci
