lib/core/proxy_usb.ml: Bufpool Bytes Engine Fiber Kernel Klog List Msg Proxy_proto Safe_pci Sync Uchan
