lib/core/native_net.ml: Bus Cost_model Cpu Driver_api Kenv_native Kernel List Netdev Netstack Option Phys_mem Queue Skbuff
