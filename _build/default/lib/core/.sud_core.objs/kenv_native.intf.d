lib/core/kenv_native.mli: Bus Driver_api Kernel
