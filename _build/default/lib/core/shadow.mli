(** Shadow-driver-style recovery (paper §2: "SUD's architecture could also
    use shadow drivers to gracefully restart untrusted device drivers").

    A shadow watches a SUD network driver from fully-trusted kernel code.
    When the driver process dies or the proxy declares it hung, the shadow
    kills what is left, starts a fresh process for the same device with the
    same driver, and replays the interface state it captured (whether the
    interface was up).  Applications see a link blip, not a crash. *)

type t

val watch :
  Kernel.t ->
  Safe_pci.t ->
  ?poll_ms:int ->
  Driver_host.started ->
  Driver_api.net_driver ->
  t
(** Start the watcher fiber (default poll every 10 ms). *)

val current : t -> Driver_host.started
(** The driver generation currently serving the device. *)

val netdev : t -> Netdev.t
val restarts : t -> int
val stop : t -> unit
(** Stop watching (does not stop the driver). *)
