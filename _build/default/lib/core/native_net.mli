(** Bind an unmodified net driver as a {e trusted in-kernel} driver: the
    baseline configuration of Figure 8.  The driver's callbacks are wired
    straight to the net stack; its DMA uses raw physical addresses.

    Must be called from a fiber (probe may sleep). *)

val attach : ?name:string -> Kernel.t -> Driver_api.net_driver -> Bus.bdf -> (Netdev.t, string) result
(** Probes the driver against the device, registers the resulting
    [Netdev.t] with the network stack and returns it. *)
