(** Fiber synchronization: wait queues, mutexes, condition variables and
    bounded mailboxes.

    Wait queues are FIFO.  Every blocking operation reports whether it was
    woken normally, interrupted (signal delivery) or timed out, which the
    SUD proxy drivers use to implement interruptible synchronous upcalls
    (paper §3.1.1). *)

module Waitq : sig
  type t

  val create : unit -> t

  val wait : t -> Fiber.wake
  (** Park the current fiber until {!signal}/{!broadcast}, an interrupt or a
      kill. *)

  val wait_timeout : Engine.t -> t -> int -> Fiber.wake
  (** Like {!wait} but also wakes with [Timeout] after the given ns. *)

  val signal : t -> bool
  (** Wake the oldest waiter.  False if nobody was waiting. *)

  val broadcast : t -> int
  (** Wake all current waiters; returns how many were woken. *)

  val waiters : t -> int
end

module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
  val locked : t -> bool
end

module Condvar : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> Fiber.wake
  (** Atomically release the mutex and wait; the mutex is re-acquired before
      returning, whatever the wake reason. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

module Mailbox : sig
  (** Bounded FIFO of values between fibers; the building block for queues
      that are not shared-memory rings. *)

  type 'a t

  val create : capacity:int -> 'a t

  val send : 'a t -> 'a -> [ `Ok | `Interrupted ]
  (** Blocks while full. *)

  val try_send : 'a t -> 'a -> bool

  val recv : 'a t -> [ `Ok of 'a | `Interrupted ]
  (** Blocks while empty. *)

  val recv_timeout : Engine.t -> 'a t -> int -> [ `Ok of 'a | `Interrupted | `Timeout ]
  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end
