(** A pool of CPU cores with busy-time accounting.

    {!consume} charges CPU time to the calling fiber: the fiber occupies the
    earliest-free core and blocks until the work completes, so CPU
    contention naturally delays other consumers.  Busy time is accumulated
    globally and per label, which is how the benchmarks report the "CPU %"
    column of Figure 8. *)

type t

val create : Engine.t -> cores:int -> Cost_model.t -> t

val cores : t -> int
val cost_model : t -> Cost_model.t
val engine : t -> Engine.t

val consume : t -> label:string -> int -> unit
(** Charge [ns] of CPU to [label]; the current fiber blocks until the work
    is done (including any queueing delay for a free core).  Zero or
    negative cost is a no-op.  Not interruptible. *)

val account : t -> label:string -> int -> unit
(** Record busy time without blocking — for costs incurred by pure event
    callbacks (e.g. device-side processing) that should still count against
    utilization. *)

val busy_ns : t -> int
(** Total busy nanoseconds across all cores since creation. *)

val busy_of : t -> string -> int
(** Busy nanoseconds charged to one label. *)

val labels : t -> (string * int) list
(** All labels with their busy time, sorted by label. *)

val utilization : t -> since_busy:int -> since_time:int -> float
(** Fraction of total core capacity used over the window starting at
    simulated time [since_time] with busy snapshot [since_busy]:
    [(busy_ns t - since_busy) / (cores * (now - since_time))]. *)
