(** Measurement helpers: counters, running moments, histograms and
    confidence intervals.

    The benchmark harness stops sampling once the half-width of the
    confidence interval falls below a requested fraction of the mean, the
    same stopping rule netperf uses (the paper runs netperf "to report
    results accurate to 5% with 99% confidence"). *)

module Counter : sig
  type t

  val create : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Moments : sig
  (** Welford running mean / variance. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val stddev : t -> float

  val ci_halfwidth : t -> confidence:float -> float
  (** Half-width of the confidence interval for the mean.  [confidence] is
      0.95 or 0.99; other values fall back to 0.99's critical value. *)

  val converged : t -> confidence:float -> accuracy:float -> bool
  (** True once at least three samples were taken and the CI half-width is
      below [accuracy *. mean]. *)
end

module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile h 0.5] is the median.  Raises [Invalid_argument] on an empty
      histogram or a quantile outside [0,1]. *)

  val mean : t -> float
  val max : t -> float
  val min : t -> float
end
