module Counter = struct
  type t = { name : string; mutable v : int }

  let create name = { name; v = 0 }
  let name t = t.name
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let get t = t.v
  let reset t = t.v <- 0
end

module Moments = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let n t = t.n
  let mean t = t.mean

  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let z_value confidence = if confidence < 0.97 then 1.96 else 2.576

  let ci_halfwidth t ~confidence =
    if t.n < 2 then infinity
    else z_value confidence *. stddev t /. sqrt (float_of_int t.n)

  let converged t ~confidence ~accuracy =
    t.n >= 3
    && (t.mean = 0.0 || ci_halfwidth t ~confidence <= accuracy *. abs_float t.mean)
end

module Histogram = struct
  type t = { mutable samples : float array; mutable len : int; mutable sorted : bool }

  let create () = { samples = Array.make 64 0.0; len = 0; sorted = true }

  let add t x =
    if t.len = Array.length t.samples then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.samples 0 bigger 0 t.len;
      t.samples <- bigger
    end;
    t.samples.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.samples 0 t.len in
      Array.sort compare live;
      Array.blit live 0 t.samples 0 t.len;
      t.sorted <- true
    end

  let quantile t q =
    if t.len = 0 then invalid_arg "Histogram.quantile: empty";
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: out of range";
    ensure_sorted t;
    let idx = int_of_float (q *. float_of_int (t.len - 1)) in
    t.samples.(idx)

  let mean t =
    if t.len = 0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.len - 1 do
        sum := !sum +. t.samples.(i)
      done;
      !sum /. float_of_int t.len
    end

  let max t = quantile t 1.0
  let min t = quantile t 0.0
end
