type t = {
  eng : Engine.t;
  free_at : int array;
  model : Cost_model.t;
  mutable busy : int;
  by_label : (string, int ref) Hashtbl.t;
}

let create eng ~cores model =
  if cores <= 0 then invalid_arg "Cpu.create: need at least one core";
  { eng; free_at = Array.make cores 0; model; busy = 0; by_label = Hashtbl.create 16 }

let cores t = Array.length t.free_at
let cost_model t = t.model
let engine t = t.eng

let charge t label ns =
  t.busy <- t.busy + ns;
  match Hashtbl.find_opt t.by_label label with
  | Some r -> r := !r + ns
  | None -> Hashtbl.add t.by_label label (ref ns)

let pick_core t =
  let best = ref 0 in
  for i = 1 to Array.length t.free_at - 1 do
    if t.free_at.(i) < t.free_at.(!best) then best := i
  done;
  !best

let consume t ~label ns =
  if ns > 0 then begin
    let now = Engine.now t.eng in
    let core = pick_core t in
    let start = max now t.free_at.(core) in
    let finish = start + ns in
    t.free_at.(core) <- finish;
    charge t label ns;
    let rec wait_until deadline =
      match Fiber.sleep t.eng (deadline - Engine.now t.eng) with
      | Fiber.Normal | Fiber.Timeout -> ()
      | Fiber.Interrupted ->
        (* CPU burn is not interruptible; keep waiting out the charge. *)
        if Engine.now t.eng < deadline then wait_until deadline
    in
    if finish > now then wait_until finish
  end

(* Event-context work still occupies a core: book capacity by advancing a
   core's free time, without blocking the (nonexistent) fiber.  This keeps
   total busy time bounded by cores * elapsed in steady state. *)
let account t ~label ns =
  if ns > 0 then begin
    let now = Engine.now t.eng in
    let core = pick_core t in
    let start = max now t.free_at.(core) in
    t.free_at.(core) <- start + ns;
    charge t label ns
  end

let busy_ns t = t.busy

let busy_of t label =
  match Hashtbl.find_opt t.by_label label with Some r -> !r | None -> 0

let labels t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.by_label []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let utilization t ~since_busy ~since_time =
  let elapsed = Engine.now t.eng - since_time in
  if elapsed <= 0 then 0.0
  else
    float_of_int (t.busy - since_busy)
    /. (float_of_int (Array.length t.free_at) *. float_of_int elapsed)
