(* Array-based binary min-heap, specialized by a comparison function.
   Used by the engine's event queue; not exposed outside the library. *)

type 'a t = { mutable data : 'a array; mutable len : int; cmp : 'a -> 'a -> int }

let create ~cmp ~dummy = { data = Array.make 64 dummy; len = 0; cmp }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let bigger = Array.make (2 * Array.length t.data) t.data.(0) in
  Array.blit t.data 0 bigger 0 t.len;
  t.data <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.len && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    t.data.(0) <- t.data.(t.len);
    if t.len > 0 then sift_down t 0;
    Some top
  end
