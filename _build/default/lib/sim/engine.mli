(** Deterministic discrete-event engine.

    All simulated activity — fibers, hardware, timers — is driven from a
    single ordered event queue.  Time is in nanoseconds of simulated time.
    Events scheduled for the same instant fire in scheduling order, which
    makes every run reproducible. *)

type t

type handle
(** A scheduled event, cancellable until it fires. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0.  [seed] initializes the engine's root RNG
    (default 1). *)

val now : t -> int
(** Current simulated time in nanoseconds. *)

val rng : t -> Rng.t
(** The engine's root random stream; split it for independent components. *)

val schedule_after : t -> int -> (unit -> unit) -> handle
(** [schedule_after t delay fn] runs [fn] at [now t + delay].
    Raises [Invalid_argument] on a negative delay. *)

val schedule_now : t -> (unit -> unit) -> handle
(** Run at the current instant, after already-queued events for this
    instant. *)

val cancel : handle -> unit
(** Cancelling an already-fired event is a no-op. *)

val run : ?max_time:int -> ?max_events:int -> t -> unit
(** Process events until the queue is empty or a limit is hit.  [max_time]
    stops the clock from advancing past the given instant (events at later
    times remain queued). *)

val pending : t -> int
(** Number of queued (uncancelled or cancelled-but-unreaped) events. *)
