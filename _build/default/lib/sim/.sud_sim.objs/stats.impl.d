lib/sim/stats.ml: Array
