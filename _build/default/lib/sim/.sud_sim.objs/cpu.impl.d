lib/sim/cpu.ml: Array Cost_model Engine Fiber Hashtbl List
