lib/sim/sync.mli: Engine Fiber
