lib/sim/cpu.mli: Cost_model Engine
