lib/sim/stats.mli:
