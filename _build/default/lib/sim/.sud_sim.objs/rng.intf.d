lib/sim/rng.mli:
