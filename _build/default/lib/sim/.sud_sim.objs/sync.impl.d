lib/sim/sync.ml: Engine Fiber Fun Queue
