type handle = { mutable cancelled : bool }

type event = { time : int; seq : int; h : handle; fn : unit -> unit }

type t = {
  mutable now : int;
  mutable seq : int;
  heap : event Heap.t;
  root_rng : Rng.t;
}

let dummy_event = { time = 0; seq = 0; h = { cancelled = true }; fn = ignore }

let compare_event a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create ?(seed = 1L) () =
  { now = 0;
    seq = 0;
    heap = Heap.create ~cmp:compare_event ~dummy:dummy_event;
    root_rng = Rng.create ~seed }

let now t = t.now
let rng t = t.root_rng

let schedule_after t delay fn =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  let h = { cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.heap { time = t.now + delay; seq = t.seq; h; fn };
  h

let schedule_now t fn = schedule_after t 0 fn

let cancel h = h.cancelled <- true

let pending t = Heap.length t.heap

let run ?(max_time = max_int) ?(max_events = max_int) t =
  let fired = ref 0 in
  let continue_ = ref true in
  while !continue_ && !fired < max_events do
    match Heap.peek t.heap with
    | None -> continue_ := false
    | Some ev when ev.time > max_time -> continue_ := false
    | Some _ ->
      (match Heap.pop t.heap with
       | None -> continue_ := false
       | Some ev ->
         t.now <- max t.now ev.time;
         if not ev.h.cancelled then begin
           incr fired;
           ev.fn ()
         end)
  done
