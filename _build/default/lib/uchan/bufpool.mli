(** Shared DMA-capable buffer pool ([sud_alloc]/[sud_free], paper
    Figure 3).

    The pool lives inside one of the driver's dma_coherent regions, so
    the same bytes serve three masters with no copies between them: the
    uchan payload area the kernel proxy reads, the virtual address the
    driver writes, and the IO virtual address the device DMAs to.

    The pool is constructed over the region's accessors; [base_addr] is
    the region's bus address, so [buf.addr] values can be handed straight
    to the device (and are what travels in uchan messages). *)

type t

type buf = { id : int; addr : int; size : int }

val create :
  read:(off:int -> len:int -> bytes) ->
  write:(off:int -> data:bytes -> unit) ->
  base_addr:int ->
  count:int ->
  buf_size:int ->
  t

val region_size : count:int -> buf_size:int -> int

val count : t -> int
val buf_size : t -> int

val alloc : t -> buf option
(** None when exhausted. *)

val free : t -> int -> unit
(** Double frees and wild ids are ignored (the driver is untrusted). *)

val get : t -> int -> buf option
(** Validate a buffer id received from the untrusted side. *)

val in_use : t -> int

val read : t -> buf -> off:int -> len:int -> bytes
val write : t -> buf -> off:int -> bytes -> unit
(** Bounds-checked accessors; raise [Invalid_argument] outside the buffer. *)
