lib/uchan/msg.ml: Array Bytes Char Int32 Int64 List
