lib/uchan/bufpool.ml: Array Bytes Queue
