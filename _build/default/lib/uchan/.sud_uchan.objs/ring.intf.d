lib/uchan/ring.mli:
