lib/uchan/uchan.mli: Kernel Msg
