lib/uchan/uchan.ml: Cost_model Cpu Engine Fiber Hashtbl Kernel Klog List Msg Process Ring Sync
