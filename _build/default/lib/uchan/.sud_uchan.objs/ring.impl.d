lib/uchan/ring.ml: Array Bytes Msg
