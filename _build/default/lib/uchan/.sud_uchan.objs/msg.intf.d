lib/uchan/msg.mli:
