lib/uchan/bufpool.mli:
