(** Single-producer single-consumer ring of fixed-size message slots,
    modelling the memory shared between kernel and driver process
    (paper §3.1.2).  Pure data structure — notification is layered on top
    by {!Uchan}. *)

type t

val create : slots:int -> t
(** [slots] must be a power of two. *)

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val try_push : t -> bytes -> bool
(** False when full.  The slot bytes are copied in. *)

val try_pop : t -> bytes option

val peek : t -> bytes option
