(** Uchan messages ([msg_t] in the paper).

    A message carries an opcode, a correlation sequence number (0 for
    asynchronous messages), up to {!max_args} integer arguments, an
    optional small inline payload and an optional shared-buffer
    reference.  Messages are marshalled into fixed {!slot_size}-byte ring
    slots — bulk data never travels inline; it goes through shared
    buffers ({!Bufpool}). *)

type t = {
  kind : int;             (** RPC opcode, proxy-class specific *)
  seq : int;              (** correlation id; 0 = asynchronous *)
  args : int array;       (** at most {!max_args} entries *)
  payload : bytes;        (** inline payload, at most {!max_payload} *)
  buf : int;              (** shared buffer id, or -1 *)
}

val slot_size : int
val max_args : int
val max_payload : int

val make : ?seq:int -> ?args:int list -> ?payload:bytes -> ?buf:int -> kind:int -> unit -> t

val marshal : t -> bytes
(** Raises [Invalid_argument] if the message exceeds the slot format. *)

val unmarshal : bytes -> (t, string) result
(** Defensive: a malicious driver writes arbitrary bytes into the shared
    ring, so unmarshalling validates every length field. *)

val arg : t -> int -> int
(** [arg t i] with a 0 default for missing arguments. *)
