type buf = { id : int; addr : int; size : int }

type t = {
  rd : off:int -> len:int -> bytes;
  wr : off:int -> data:bytes -> unit;
  base_addr : int;
  n : int;
  bsize : int;
  free_ids : int Queue.t;
  allocated : bool array;
}

let region_size ~count ~buf_size = count * buf_size

let create ~read ~write ~base_addr ~count ~buf_size =
  if count <= 0 || buf_size <= 0 then invalid_arg "Bufpool.create";
  let free_ids = Queue.create () in
  for i = 0 to count - 1 do Queue.push i free_ids done;
  { rd = read; wr = write; base_addr; n = count; bsize = buf_size; free_ids; allocated = Array.make count false }

let count t = t.n
let buf_size t = t.bsize

let mk t id = { id; addr = t.base_addr + (id * t.bsize); size = t.bsize }

let alloc t =
  match Queue.take_opt t.free_ids with
  | None -> None
  | Some id ->
    t.allocated.(id) <- true;
    Some (mk t id)

let free t id =
  if id >= 0 && id < t.n && t.allocated.(id) then begin
    t.allocated.(id) <- false;
    Queue.push id t.free_ids
  end

let get t id = if id >= 0 && id < t.n && t.allocated.(id) then Some (mk t id) else None

let in_use t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.allocated

let check b ~off ~len =
  if off < 0 || len < 0 || off + len > b.size then invalid_arg "Bufpool: out of bounds"

let read t b ~off ~len =
  check b ~off ~len;
  t.rd ~off:((b.id * t.bsize) + off) ~len

let write t b ~off data =
  check b ~off ~len:(Bytes.length data);
  t.wr ~off:((b.id * t.bsize) + off) ~data
