(* Shared test plumbing: build machines, attach NICs, run driver setups. *)

let mac_a = Skbuff.Mac.of_string "52:54:00:12:34:56"
let mac_b = Skbuff.Mac.of_string "52:54:00:ab:cd:ef"

(* Run [main] as a fiber on a fresh engine+kernel and drive the engine to
   completion (bounded).  Returns the fiber's result; raises if the fiber
   never finished. *)
let run_in_kernel ?iommu_mode ?enable_acs ?(max_ms = 30_000) setup main =
  let eng = Engine.create () in
  let k = Kernel.boot ?iommu_mode ?enable_acs eng in
  let ctx = setup k in
  let result = ref None in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"test-main" (fun () ->
         result := Some (main k ctx))
     : Fiber.t);
  Engine.run ~max_time:(max_ms * 1_000_000) eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "test fiber did not complete (simulated deadlock?)"

(* A machine with two e1000 NICs on one gigabit segment. *)
type duo = {
  medium : Net_medium.t;
  nic_a : E1000_dev.t;
  nic_b : E1000_dev.t;
  bdf_a : Bus.bdf;
  bdf_b : Bus.bdf;
}

let setup_duo ?(switched = false) (k : Kernel.t) =
  let medium = Net_medium.create k.Kernel.eng () in
  let nic_a = E1000_dev.create k.Kernel.eng ~mac:mac_a ~medium () in
  let nic_b = E1000_dev.create k.Kernel.eng ~mac:mac_b ~medium () in
  let bdf_a, bdf_b =
    if switched then begin
      let sw = Pci_topology.add_switch k.Kernel.topo ~parent:(Pci_topology.root_switch k.Kernel.topo) ~name:"plx" in
      let a = Kernel.attach_pci k ~switch:sw (E1000_dev.device nic_a) in
      let b = Kernel.attach_pci k ~switch:sw (E1000_dev.device nic_b) in
      (a, b)
    end
    else begin
      let a = Kernel.attach_pci k (E1000_dev.device nic_a) in
      let b = Kernel.attach_pci k (E1000_dev.device nic_b) in
      (a, b)
    end
  in
  { medium; nic_a; nic_b; bdf_a; bdf_b }

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.fail (what ^ ": " ^ e)

(* Bring up NIC B as a trusted in-kernel peer and return its netdev. *)
let up_native ?name k bdf =
  let dev = ok_or_fail "native attach" (Native_net.attach ?name k E1000.driver bdf) in
  ok_or_fail "ifconfig up" (Netstack.ifconfig_up k.Kernel.net dev);
  dev
