(* Unit and property tests for the simulation substrate: engine, fibers,
   synchronization, CPU pool, RNG, stats. *)

let test_engine_ordering () =
  let eng = Engine.create () in
  let order = ref [] in
  let log tag () = order := tag :: !order in
  ignore (Engine.schedule_after eng 100 (log "b") : Engine.handle);
  ignore (Engine.schedule_after eng 50 (log "a") : Engine.handle);
  ignore (Engine.schedule_after eng 100 (log "c") : Engine.handle);
  Engine.run eng;
  Alcotest.(check (list string)) "time order, FIFO within an instant" [ "a"; "b"; "c" ]
    (List.rev !order);
  Alcotest.(check int) "clock at last event" 100 (Engine.now eng)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_after eng 10 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run eng;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_max_time () =
  let eng = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule_after eng 10 (fun () -> incr fired) : Engine.handle);
  ignore (Engine.schedule_after eng 1000 (fun () -> incr fired) : Engine.handle);
  Engine.run ~max_time:100 eng;
  Alcotest.(check int) "only events within the bound" 1 !fired;
  Engine.run eng;
  Alcotest.(check int) "remaining events run later" 2 !fired

let test_engine_negative_delay () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
        ignore (Engine.schedule_after eng (-1) ignore : Engine.handle))

let test_fiber_sleep () =
  let eng = Engine.create () in
  let t = ref (-1) in
  ignore
    (Fiber.spawn eng (fun () ->
         ignore (Fiber.sleep eng 500 : Fiber.wake);
         t := Engine.now eng)
     : Fiber.t);
  Engine.run eng;
  Alcotest.(check int) "woke at the right time" 500 !t

let test_fiber_kill_runs_cleanup () =
  let eng = Engine.create () in
  let cleaned = ref false in
  let blocked = ref None in
  let f =
    Fiber.spawn eng (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () ->
             ignore
               (Fiber.suspend (fun self -> blocked := Some self)
                : Fiber.wake)))
  in
  ignore (Engine.schedule_after eng 10 (fun () -> Fiber.kill f) : Engine.handle);
  Engine.run eng;
  Alcotest.(check bool) "Fun.protect ran on kill" true !cleaned;
  Alcotest.(check bool) "fiber dead" false (Fiber.is_alive f)

let test_fiber_interrupt () =
  let eng = Engine.create () in
  let got = ref None in
  let f =
    Fiber.spawn eng (fun () -> got := Some (Fiber.sleep eng 1_000_000))
  in
  ignore (Engine.schedule_after eng 10 (fun () -> ignore (Fiber.interrupt f : bool)) : Engine.handle);
  Engine.run ~max_time:2_000_000 eng;
  Alcotest.(check bool) "woken early with Interrupted" true (!got = Some Fiber.Interrupted)

let test_fiber_stale_wake () =
  let eng = Engine.create () in
  let wakes = ref 0 in
  let f =
    Fiber.spawn eng (fun () ->
        ignore (Fiber.sleep eng 100 : Fiber.wake);
        incr wakes)
  in
  (* Wake it twice at the same instant: second is stale and must be dropped. *)
  ignore
    (Engine.schedule_after eng 50 (fun () ->
         ignore (Fiber.wake f Fiber.Normal : bool);
         Alcotest.(check bool) "second wake rejected" false (Fiber.wake f Fiber.Normal))
     : Engine.handle);
  Engine.run eng;
  Alcotest.(check int) "body continued exactly once" 1 !wakes

let test_waitq_fifo () =
  let eng = Engine.create () in
  let q = Sync.Waitq.create () in
  let order = ref [] in
  for i = 1 to 3 do
    ignore
      (Fiber.spawn eng (fun () ->
           ignore (Sync.Waitq.wait q : Fiber.wake);
           order := i :: !order)
       : Fiber.t)
  done;
  ignore
    (Engine.schedule_after eng 10 (fun () ->
         ignore (Sync.Waitq.signal q : bool);
         ignore (Sync.Waitq.signal q : bool);
         ignore (Sync.Waitq.signal q : bool))
     : Engine.handle);
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO wakeup order" [ 1; 2; 3 ] (List.rev !order)

let test_waitq_timeout () =
  let eng = Engine.create () in
  let r = ref None in
  ignore
    (Fiber.spawn eng (fun () ->
         r := Some (Sync.Waitq.wait_timeout eng (Sync.Waitq.create ()) 100))
     : Fiber.t);
  Engine.run eng;
  Alcotest.(check bool) "timed out" true (!r = Some Fiber.Timeout)

let test_mutex_exclusion () =
  let eng = Engine.create () in
  let mu = Sync.Mutex.create () in
  let trace = Buffer.create 16 in
  for i = 1 to 2 do
    ignore
      (Fiber.spawn eng (fun () ->
           Sync.Mutex.with_lock mu (fun () ->
               Buffer.add_string trace (Printf.sprintf "<%d" i);
               ignore (Fiber.sleep eng 100 : Fiber.wake);
               Buffer.add_string trace (Printf.sprintf "%d>" i)))
       : Fiber.t)
  done;
  Engine.run eng;
  Alcotest.(check string) "critical sections do not interleave" "<11><22>"
    (Buffer.contents trace)

let test_mailbox_blocking () =
  let eng = Engine.create () in
  let mb = Sync.Mailbox.create ~capacity:2 in
  let got = ref [] in
  ignore
    (Fiber.spawn eng (fun () ->
         for _ = 1 to 4 do
           match Sync.Mailbox.recv mb with
           | `Ok v -> got := v :: !got
           | `Interrupted -> ()
         done)
     : Fiber.t);
  ignore
    (Fiber.spawn eng (fun () ->
         for i = 1 to 4 do
           ignore (Sync.Mailbox.send mb i : [ `Ok | `Interrupted ])
         done)
     : Fiber.t);
  Engine.run eng;
  Alcotest.(check (list int)) "all values in order" [ 1; 2; 3; 4 ] (List.rev !got)

let test_cpu_serializes () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:1 Cost_model.default in
  let finish = ref [] in
  for i = 1 to 3 do
    ignore
      (Fiber.spawn eng (fun () ->
           Cpu.consume cpu ~label:"t" 1000;
           finish := (i, Engine.now eng) :: !finish)
       : Fiber.t)
  done;
  Engine.run eng;
  let times = List.rev_map snd !finish in
  Alcotest.(check (list int)) "single core serializes three 1us jobs"
    [ 1000; 2000; 3000 ] times;
  Alcotest.(check int) "busy time accumulated" 3000 (Cpu.busy_ns cpu)

let test_cpu_parallel_cores () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:2 Cost_model.default in
  let done_at = ref [] in
  for _ = 1 to 2 do
    ignore
      (Fiber.spawn eng (fun () ->
           Cpu.consume cpu ~label:"t" 1000;
           done_at := Engine.now eng :: !done_at)
       : Fiber.t)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "two cores run two jobs concurrently" [ 1000; 1000 ] !done_at

let test_cpu_labels () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~cores:2 Cost_model.default in
  Cpu.account cpu ~label:"a" 100;
  Cpu.account cpu ~label:"b" 200;
  Cpu.account cpu ~label:"a" 50;
  Alcotest.(check int) "label a" 150 (Cpu.busy_of cpu "a");
  Alcotest.(check int) "label b" 200 (Cpu.busy_of cpu "b");
  Alcotest.(check (list (pair string int))) "sorted labels" [ ("a", 150); ("b", 200) ]
    (Cpu.labels cpu)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_stats_moments () =
  let m = Stats.Moments.create () in
  List.iter (Stats.Moments.add m) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 0.0001)) "mean" 5.0 (Stats.Moments.mean m);
  Alcotest.(check (float 0.01)) "stddev (sample)" 2.138 (Stats.Moments.stddev m)

let test_stats_histogram () =
  let h = Stats.Histogram.create () in
  for i = 1 to 100 do Stats.Histogram.add h (float_of_int i) done;
  Alcotest.(check (float 1.0)) "median" 50.0 (Stats.Histogram.quantile h 0.5);
  Alcotest.(check (float 0.0)) "max" 100.0 (Stats.Histogram.max h);
  Alcotest.(check (float 0.0)) "min" 1.0 (Stats.Histogram.min h)

let test_convergence () =
  let m = Stats.Moments.create () in
  for _ = 1 to 10 do Stats.Moments.add m 100.0 done;
  Alcotest.(check bool) "constant samples converge" true
    (Stats.Moments.converged m ~confidence:0.99 ~accuracy:0.05)

(* property tests *)

let qcheck_cases =
  [ QCheck.Test.make ~name:"rng int bounds" ~count:500
      QCheck.(pair (int_bound 1000) int)
      (fun (n, seed) ->
         let n = n + 1 in
         let rng = Rng.create ~seed:(Int64.of_int seed) in
         let v = Rng.int rng n in
         v >= 0 && v < n);
    QCheck.Test.make ~name:"histogram quantiles monotone" ~count:100
      QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.0))
      (fun xs ->
         QCheck.assume (xs <> []);
         let h = Stats.Histogram.create () in
         List.iter (Stats.Histogram.add h) xs;
         Stats.Histogram.quantile h 0.25 <= Stats.Histogram.quantile h 0.75);
    QCheck.Test.make ~name:"engine events fire in time order" ~count:100
      QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 10_000))
      (fun delays ->
         let eng = Engine.create () in
         let fired = ref [] in
         List.iter
           (fun d ->
              ignore (Engine.schedule_after eng d (fun () -> fired := d :: !fired)
                      : Engine.handle))
           delays;
         Engine.run eng;
         let result = List.rev !fired in
         result = List.stable_sort compare delays) ]

let suite =
  [ Alcotest.test_case "engine: ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: max_time" `Quick test_engine_max_time;
    Alcotest.test_case "engine: negative delay" `Quick test_engine_negative_delay;
    Alcotest.test_case "fiber: sleep" `Quick test_fiber_sleep;
    Alcotest.test_case "fiber: kill runs cleanup" `Quick test_fiber_kill_runs_cleanup;
    Alcotest.test_case "fiber: interrupt" `Quick test_fiber_interrupt;
    Alcotest.test_case "fiber: stale wake dropped" `Quick test_fiber_stale_wake;
    Alcotest.test_case "waitq: FIFO" `Quick test_waitq_fifo;
    Alcotest.test_case "waitq: timeout" `Quick test_waitq_timeout;
    Alcotest.test_case "mutex: exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mailbox: blocking send/recv" `Quick test_mailbox_blocking;
    Alcotest.test_case "cpu: one core serializes" `Quick test_cpu_serializes;
    Alcotest.test_case "cpu: two cores parallel" `Quick test_cpu_parallel_cores;
    Alcotest.test_case "cpu: per-label accounting" `Quick test_cpu_labels;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "stats: moments" `Quick test_stats_moments;
    Alcotest.test_case "stats: histogram" `Quick test_stats_histogram;
    Alcotest.test_case "stats: convergence" `Quick test_convergence ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
