test/test_main.ml: Alcotest Test_core Test_devices Test_drivers Test_hw Test_kernel Test_props Test_security Test_sim Test_smoke Test_uchan
