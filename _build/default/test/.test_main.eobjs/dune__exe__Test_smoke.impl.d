test/test_smoke.ml: Alcotest Bytes Driver_host E1000 Fiber Helpers Kernel List Netdev Netstack Process Safe_pci
