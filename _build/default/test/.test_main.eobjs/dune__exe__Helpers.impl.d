test/helpers.ml: Alcotest Bus E1000 E1000_dev Engine Fiber Kernel Native_net Net_medium Netstack Pci_topology Process Skbuff
