test/test_sim.ml: Alcotest Buffer Cost_model Cpu Engine Fiber Fun Gen Int64 List Printf QCheck QCheck_alcotest Rng Stats Sync
