test/test_uchan.ml: Alcotest Array Bufpool Bytes Engine Fiber Kernel List Msg Option Process QCheck QCheck_alcotest Queue Result Ring Uchan
