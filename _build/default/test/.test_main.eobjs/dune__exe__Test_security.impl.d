test/test_security.ml: Alcotest Iommu Printf Scenarios
