test/test_kernel.ml: Alcotest Bytes Char Engine Fiber Format Gen Helpers Irq Kernel Klog List Netdev Netstack Preempt Process QCheck QCheck_alcotest Result Skbuff String
