(* Device delegation (paper §6): a bus-manager scan starts one untrusted
   driver process per discovered device, each under a distinct UID.

     dune exec examples/delegation_demo.exe *)

let () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let air = Net_medium.create eng () in
  (* A small machine: two ethernet NICs, a wireless card, a sound card. *)
  let nic1 = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "02:00:00:00:00:01") ~medium () in
  let nic2 = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "02:00:00:00:00:02") ~medium () in
  let wifi =
    Wifi_dev.create eng ~mac:(Skbuff.Mac.of_string "02:24:d7:00:00:03") ~medium:air
      ~bss_list:[ { Wifi_dev.bssid = 1; ssid = "lab"; signal_dbm = -50 } ] ()
  in
  let hda = Hda_dev.create eng () in
  ignore (Kernel.attach_pci k (E1000_dev.device nic1) : Bus.bdf);
  ignore (Kernel.attach_pci k (E1000_dev.device nic2) : Bus.bdf);
  ignore (Kernel.attach_pci k (Wifi_dev.device wifi) : Bus.bdf);
  ignore (Kernel.attach_pci k (Hda_dev.device hda) : Bus.bdf);
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"bus-manager" (fun () ->
         let sp = Safe_pci.init k in
         let rows =
           Delegation.scan_and_start k sp
             ~registry:
               [ Delegation.Net E1000.driver;
                 Delegation.Wifi Iwl.driver;
                 Delegation.Audio Hda.driver ]
             ()
         in
         Printf.printf "bus scan started %d drivers:\n" (List.length rows);
         List.iter
           (fun (bdf, name, result) ->
              let pid_uid =
                match result with
                | Ok (Delegation.Started_net s) ->
                  let p = Driver_host.proc s in
                  Printf.sprintf "pid %d uid %d" (Process.pid p) (Process.uid p)
                | Ok (Delegation.Started_wifi s) ->
                  let p = Driver_host.wifi_proc s in
                  Printf.sprintf "pid %d uid %d" (Process.pid p) (Process.uid p)
                | Ok (Delegation.Started_audio s) ->
                  let p = Driver_host.audio_proc s in
                  Printf.sprintf "pid %d uid %d" (Process.pid p) (Process.uid p)
                | Error e -> "FAILED: " ^ e
              in
              Printf.printf "  %s  %-12s %s\n" (Bus.string_of_bdf bdf) name pid_uid)
           rows;
         Printf.printf "netdevs now registered: %s\n"
           (String.concat ", " (List.map Netdev.name (Netstack.netdevs k.Kernel.net))))
     : Fiber.t);
  Engine.run ~max_time:2_000_000_000 eng
