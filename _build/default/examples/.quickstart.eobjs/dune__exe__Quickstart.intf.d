examples/quickstart.mli:
