examples/quickstart.ml: Bytes Driver_host E1000 E1000_dev Engine Fiber Kernel List Native_net Net_medium Netdev Netstack Printf Process Safe_pci Skbuff Uchan
