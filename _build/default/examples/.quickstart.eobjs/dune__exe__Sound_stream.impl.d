examples/sound_stream.ml: Bytes Char Driver_host Engine Fiber Float Hda Hda_dev Kernel Printf Process Proxy_audio Safe_pci
