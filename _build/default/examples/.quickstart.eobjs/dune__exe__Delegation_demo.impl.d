examples/delegation_demo.ml: Bus Delegation Driver_host E1000 E1000_dev Engine Fiber Hda Hda_dev Iwl Kernel List Net_medium Netdev Netstack Printf Process Safe_pci Skbuff String Wifi_dev
