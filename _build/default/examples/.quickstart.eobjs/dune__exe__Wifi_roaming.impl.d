examples/wifi_roaming.ml: Driver_host Engine Fiber Iwl Kernel List Net_medium Netdev Netstack Preempt Printf Process Proxy_wifi Safe_pci Skbuff String Wifi_dev
