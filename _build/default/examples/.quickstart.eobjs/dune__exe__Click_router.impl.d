examples/click_router.ml: Bytes Char Cpu Driver_api E1000_dev Engine Fiber Int64 Kernel List Net_medium Printf Process Safe_pci Skbuff String
