examples/usb_disk.ml: Bytes Driver_host Ehci Engine Fiber Int32 Kernel Printf Process Proxy_usb Safe_pci Usb_device Usb_hci_dev
