examples/wifi_roaming.mli:
