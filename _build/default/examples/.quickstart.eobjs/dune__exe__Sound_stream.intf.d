examples/sound_stream.mli:
