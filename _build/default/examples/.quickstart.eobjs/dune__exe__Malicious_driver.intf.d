examples/malicious_driver.mli:
