examples/driver_restart.mli:
