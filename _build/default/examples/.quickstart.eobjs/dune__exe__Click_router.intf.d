examples/click_router.mli:
