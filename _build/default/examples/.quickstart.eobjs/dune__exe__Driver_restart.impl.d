examples/driver_restart.ml: Bus Bytes Driver_host E1000 E1000_dev Engine Fiber Iommu Kernel List Mal_nic Native_net Net_medium Netdev Netstack Printf Process Safe_pci Skbuff
