examples/malicious_driver.ml: List Printf Scenarios String
