examples/usb_disk.mli:
