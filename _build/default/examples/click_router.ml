(* The paper's §6 "Applications" point: programs like the Click router want
   direct access to packets as the NIC receives them, and today run as
   trusted kernel modules.  Under SUD the same program runs as an untrusted
   process with direct (confined) hardware access.

   This example is a user-level two-port packet forwarder: one process, its
   own UID, two e1000 NICs opened through SUD's device files, poll-mode RX
   and TX rings programmed directly — the kernel's network stack never sees
   a packet, yet the process can touch nothing but its two NICs.

     dune exec examples/click_router.exe *)

module R = E1000_dev.Regs

(* A tiny poll-mode port driver over a Safe_pci grant — the "Click element". *)
type port = {
  mmio : Driver_api.mmio;
  tx_ring : Driver_api.dma_region;
  rx_ring : Driver_api.dma_region;
  bufs : Driver_api.dma_region;
  mutable rx_next : int;
  mutable tx_tail : int;
}

let nslots = 64
let bufsz = 2048

let _r32 p off = p.mmio.Driver_api.mmio_read ~off ~size:4
let w32 p off v = p.mmio.Driver_api.mmio_write ~off ~size:4 v

let open_port grant =
  let get = function Ok v -> v | Error e -> failwith e in
  get (Safe_pci.enable_device grant);
  let mmio = get (Safe_pci.map_mmio grant ~bar:0) in
  let tx_ring = get (Safe_pci.alloc_dma grant ~bytes:(nslots * 16) ()) in
  let rx_ring = get (Safe_pci.alloc_dma grant ~bytes:(nslots * 16) ()) in
  let bufs = get (Safe_pci.alloc_dma grant ~bytes:(2 * nslots * bufsz) ()) in
  let p = { mmio; tx_ring; rx_ring; bufs; rx_next = 0; tx_tail = 0 } in
  (* RX descriptors point into the first half of the buffer region. *)
  for i = 0 to nslots - 1 do
    Driver_api.dma_set64 p.rx_ring ~off:(i * 16)
      (Int64.of_int (bufs.Driver_api.dma_addr + (i * bufsz)));
    p.rx_ring.Driver_api.dma_write ~off:((i * 16) + 8) (Bytes.make 8 '\000')
  done;
  w32 p R.rdbal (rx_ring.Driver_api.dma_addr land 0xFFFFFFFF);
  w32 p R.rdbah (rx_ring.Driver_api.dma_addr lsr 32);
  w32 p R.rdlen (nslots * 16);
  w32 p R.rdh 0;
  w32 p R.rdt (nslots - 1);
  w32 p R.tdbal (tx_ring.Driver_api.dma_addr land 0xFFFFFFFF);
  w32 p R.tdbah (tx_ring.Driver_api.dma_addr lsr 32);
  w32 p R.tdlen (nslots * 16);
  w32 p R.tdh 0;
  w32 p R.tdt 0;
  (* Poll mode, as Click runs: no interrupts at all. *)
  w32 p R.imc 0xFFFFFFFF;
  w32 p R.rctl R.rctl_en;
  w32 p R.tctl R.tctl_en;
  p

(* Forward every frame pending on [src] out of [dst]; returns frames moved. *)
let forward src dst =
  let moved = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let off = src.rx_next * 16 in
    let status = Bytes.get (src.rx_ring.Driver_api.dma_read ~off:(off + 12) ~len:1) 0 in
    if Char.code status land R.rxd_sta_dd <> 0 then begin
      let len = Bytes.get_uint16_le (src.rx_ring.Driver_api.dma_read ~off:(off + 8) ~len:2) 0 in
      let frame = src.bufs.Driver_api.dma_read ~off:(src.rx_next * bufsz) ~len in
      (* TX out of the destination port's second buffer half (zero kernel
         involvement; one user-space copy between the two devices). *)
      let slot = dst.tx_tail in
      let txbuf_off = (nslots + slot) * bufsz in
      dst.bufs.Driver_api.dma_write ~off:txbuf_off frame;
      let doff = slot * 16 in
      Driver_api.dma_set64 dst.tx_ring ~off:doff
        (Int64.of_int (dst.bufs.Driver_api.dma_addr + txbuf_off));
      let meta = Bytes.make 8 '\000' in
      Bytes.set_uint16_le meta 0 len;
      Bytes.set meta 3 (Char.chr (R.txd_cmd_eop lor R.txd_cmd_rs));
      dst.tx_ring.Driver_api.dma_write ~off:(doff + 8) meta;
      dst.tx_tail <- (slot + 1) mod nslots;
      w32 dst R.tdt dst.tx_tail;
      (* Recycle the RX descriptor. *)
      src.rx_ring.Driver_api.dma_write ~off:(off + 8) (Bytes.make 8 '\000');
      w32 src R.rdt src.rx_next;
      src.rx_next <- (src.rx_next + 1) mod nslots;
      incr moved
    end
    else continue_ := false
  done;
  !moved

let () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  (* Two separate links, one NIC on each; a traffic source on link A and a
     sink on link B. *)
  let link_a = Net_medium.create eng () and link_b = Net_medium.create eng () in
  let nic_a = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "02:00:00:00:00:0a") ~medium:link_a () in
  let nic_b = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "02:00:00:00:00:0b") ~medium:link_b () in
  let bdf_a = Kernel.attach_pci k (E1000_dev.device nic_a) in
  let bdf_b = Kernel.attach_pci k (E1000_dev.device nic_b) in
  let source = Net_medium.attach link_a ~name:"src" ~rx:ignore in
  let forwarded = ref 0 in
  ignore
    (Net_medium.attach link_b ~name:"sink" ~rx:(fun f ->
         incr forwarded;
         if !forwarded <= 3 then
           Printf.printf "[sink] frame %d (%d bytes): %s...\n" !forwarded (Bytes.length f)
             (String.escaped (Bytes.sub_string f 14 (min 16 (Bytes.length f - 14)))))
     : Net_medium.port);
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"admin" (fun () ->
         let sp = Safe_pci.init k in
         Safe_pci.register_device sp bdf_a;
         Safe_pci.register_device sp bdf_b;
         Safe_pci.set_owner sp bdf_a ~uid:3000;
         Safe_pci.set_owner sp bdf_b ~uid:3000;
         (* The router: ONE untrusted process owning both NICs. *)
         let router = Process.spawn k.Kernel.procs ~name:"click-router" ~uid:3000 in
         let ga =
           match Safe_pci.open_device sp bdf_a ~proc:router with
           | Ok g -> g
           | Error e -> failwith e
         in
         let gb =
           match Safe_pci.open_device sp bdf_b ~proc:router with
           | Ok g -> g
           | Error e -> failwith e
         in
         ignore
           (Process.spawn_fiber router ~name:"fastpath" (fun () ->
                let pa = open_port ga and pb = open_port gb in
                print_endline "[router] ports up, polling (user-space fast path)";
                let rec poll () =
                  let n = forward pa pb + forward pb pa in
                  if n = 0 then ignore (Fiber.sleep eng 10_000 : Fiber.wake)
                  else Cpu.consume k.Kernel.cpu ~label:"proc:click-router" (n * 500);
                  poll ()
                in
                poll ())
            : Fiber.t);
         (* Traffic: 20 frames into link A addressed to anyone. *)
         ignore (Fiber.sleep eng 2_000_000 : Fiber.wake);
         for i = 1 to 20 do
           let f = Bytes.make 200 '\000' in
           Bytes.fill f 0 6 '\xff';
           Bytes.blit_string (Printf.sprintf "payload-%02d" i) 0 f 14 10;
           Net_medium.send link_a source f
         done;
         ignore (Fiber.sleep eng 50_000_000 : Fiber.wake);
         Printf.printf "[router] forwarded %d/20 frames A->B without the kernel stack\n"
           !forwarded;
         (* And confinement still holds: the router cannot DMA elsewhere. *)
         (match Safe_pci.read_driver_mem ga ~iova:0x100000 ~len:16 with
          | Error e -> Printf.printf "[sud] out-of-region access denied: %s\n" e
          | Ok _ -> print_endline "[sud] BREACH");
         Printf.printf "[sud] IOMMU mappings for port A: %d region(s), nothing else\n"
           (List.length (Safe_pci.iommu_mappings ga)))
     : Fiber.t);
  Engine.run ~max_time:2_000_000_000 eng
