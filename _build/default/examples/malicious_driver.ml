(* The security story (paper §5.2), end to end: run every attack from the
   sud_attacks library and print the containment table.

     dune exec examples/malicious_driver.exe *)

let () =
  print_endline "SUD security evaluation — each row is a malicious-driver scenario";
  print_endline (String.make 100 '-');
  Printf.printf "%-42s %-34s %-9s\n" "Attack" "Configuration" "Contained";
  print_endline (String.make 100 '-');
  List.iter
    (fun o ->
       Printf.printf "%-42s %-34s %-9s\n" o.Scenarios.attack
         (if String.length o.Scenarios.config > 34 then
            String.sub o.Scenarios.config 0 31 ^ "..."
          else o.Scenarios.config)
         (if o.Scenarios.contained then "yes" else "NO");
       Printf.printf "    %s\n" o.Scenarios.evidence)
    (Scenarios.all ());
  print_endline (String.make 100 '-');
  print_endline
    "NO rows are expected: the trusted-driver baseline, disabled protections (ACS off,\n\
     no source validation, zero-copy delivery) and the paper's own testbed gap (VT-d\n\
     without interrupt remapping cannot stop DMA-forged interrupt storms, 5.2)."
