(* sudctl — command-line front end to the SUD reproduction.

   Commands are noun-verb: the noun names the subsystem, the verb the
   operation.  Anything that can fail lives in the Ctl library so the
   test suite drives the same code paths; this file only parses
   arguments and formats output.

     sudctl security [--attack NAME]    run attack scenarios
     sudctl netperf [--test NAME]       run Figure 8 benchmarks
     sudctl mappings                    print Figure 9
     sudctl files                       print Figure 6
     sudctl protocol                    print Figure 7
     sudctl metrics [--json]            run a workload, dump /sys/kernel/sud_metrics
     sudctl blk status                  boot a supervised NVMe, probe it, print
                                        the whole-stack status snapshot
     sudctl driver list                 list supervised drivers and their standbys
     sudctl driver status               one driver's generation machinery
     sudctl driver upgrade              zero-loss live upgrade to the warm standby
     sudctl driver failover             forced failover through the fault path
     sudctl trace smoke [--out FILE]    traced DMA-violation recovery, verify the
                                        causal span chain in the JSONL export
     sudctl check list                  list sud-check scenarios and canaries
     sudctl check explore SCENARIO      hunt for failing schedules, dump + shrink
     sudctl check replay FILE           re-execute a recorded schedule bit-for-bit
     sudctl check shrink FILE           ddmin a saved failing schedule

   [sudctl trace-smoke] survives as a deprecated spelling of
   [sudctl trace smoke]. *)

open Cmdliner

let run_security attack =
  let all = Scenarios.all () in
  let chosen =
    match attack with
    | None -> all
    | Some name ->
      List.filter
        (fun o ->
           let lower = String.lowercase_ascii o.Scenarios.attack in
           let pat = String.lowercase_ascii name in
           let n = String.length lower and m = String.length pat in
           let rec scan i = i + m <= n && (String.sub lower i m = pat || scan (i + 1)) in
           m > 0 && scan 0)
        all
  in
  if chosen = [] then begin
    Printf.eprintf "no attack matches %s\n"
      (match attack with Some a -> a | None -> "");
    exit 1
  end;
  List.iter
    (fun o ->
       Printf.printf "%-44s %-36s %s\n    %s\n" o.Scenarios.attack o.Scenarios.config
         (if o.Scenarios.contained then "contained" else "NOT CONTAINED")
         o.Scenarios.evidence)
    chosen

let run_netperf test =
  let benches =
    [ ("tcp_stream", ("TCP_STREAM", fun m -> Netperf.tcp_stream m));
      ("udp_tx", ("UDP_STREAM TX", fun m -> Netperf.udp_stream_tx m));
      ("udp_rx", ("UDP_STREAM RX", fun m -> Netperf.udp_stream_rx m));
      ("udp_rr", ("UDP_RR", fun m -> Netperf.udp_rr m)) ]
  in
  let chosen =
    match test with
    | None -> benches
    | Some t ->
      (match List.assoc_opt t benches with
       | Some b -> [ (t, b) ]
       | None ->
         Printf.eprintf "unknown test %s (tcp_stream|udp_tx|udp_rx|udp_rr)\n" t;
         exit 1)
  in
  List.iter
    (fun (_, (name, bench)) ->
       List.iter
         (fun mode ->
            let r = bench mode in
            Printf.printf "%-16s %-18s %10.0f %-14s %5.1f%% CPU (%d samples)\n" name
              (Netperf.mode_name mode) r.Netperf.throughput r.Netperf.units r.Netperf.cpu_pct
              r.Netperf.samples)
         [ Netperf.Kernel_driver; Netperf.Sud_driver ])
    chosen

let run_mappings () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 '\x02') ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"m" (fun () ->
         let sp = Safe_pci.init k in
         match Driver_host.launch k sp ~bdf (Driver_host.net ()) E1000.driver with
         | Error e -> prerr_endline e
         | Ok s ->
           Printf.printf "%-12s %-12s %-10s %s\n" "IOVA" "Phys" "Size" "Writable";
           List.iter
             (fun (iova, phys, len, w) ->
                Printf.printf "0x%08X   0x%08X   %-10s %b\n" iova phys
                  (Printf.sprintf "%dK" (len / 1024)) w)
             (Safe_pci.iommu_mappings (Driver_host.grant s)))
     : Fiber.t);
  Engine.run ~max_time:1_000_000_000 eng

let run_files () =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic = E1000_dev.create eng ~mac:(Bytes.make 6 '\x02') ~medium () in
  let bdf = Kernel.attach_pci k (E1000_dev.device nic) in
  let sp = Safe_pci.init k in
  Safe_pci.register_device sp bdf;
  List.iter print_endline (Safe_pci.device_files sp bdf)

(* Boot a machine, echo UDP through two full driver stacks (one SUD, one
   native) so every subsystem has something to count, then read the
   registry back the way an administrator would: through sysfs. *)
let run_metrics json =
  let eng = Engine.create () in
  let k = Kernel.boot eng in
  let medium = Net_medium.create eng () in
  let nic_a = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "52:54:00:00:00:0a") ~medium () in
  let nic_b = E1000_dev.create eng ~mac:(Skbuff.Mac.of_string "52:54:00:00:00:0b") ~medium () in
  let bdf_a = Kernel.attach_pci k (E1000_dev.device nic_a) in
  let bdf_b = Kernel.attach_pci k (E1000_dev.device nic_b) in
  ignore
    (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"main" (fun () ->
         let sp = Safe_pci.init k in
         let started =
           match Driver_host.launch k sp ~bdf:bdf_a ~name:"eth0" (Driver_host.net ()) E1000.driver with
           | Ok s -> s
           | Error e -> failwith e
         in
         let eth0 = Driver_host.netdev started in
         (match Netstack.ifconfig_up k.Kernel.net eth0 with
          | Ok () -> ()
          | Error e -> failwith e);
         let eth1 =
           match Native_net.attach ~name:"eth1" k E1000.driver bdf_b with
           | Ok d -> d
           | Error e -> failwith e
         in
         ignore (Netstack.ifconfig_up k.Kernel.net eth1 : (unit, string) result);
         let server = Netstack.udp_bind k.Kernel.net eth1 ~port:7 in
         ignore
           (Process.spawn_fiber (Process.kernel_process k.Kernel.procs) ~name:"echo" (fun () ->
                let rec loop () =
                  match Netstack.udp_recv k.Kernel.net server with
                  | Some (data, (src, sport)) ->
                    ignore
                      (Netstack.udp_sendto k.Kernel.net server ~dst:src ~dst_port:sport data
                       : [ `Sent | `Dropped ]);
                    loop ()
                  | None -> ()
                in
                loop ())
            : Fiber.t);
         let client = Netstack.udp_bind k.Kernel.net eth0 ~port:9999 in
         for i = 1 to 20 do
           ignore
             (Netstack.udp_sendto k.Kernel.net client ~dst:(Netdev.mac eth1) ~dst_port:7
                (Bytes.of_string (Printf.sprintf "ping %d" i))
              : [ `Sent | `Dropped ]);
           ignore (Netstack.udp_recv k.Kernel.net client : (bytes * (bytes * int)) option)
         done;
         let path =
           if json then "/sys/kernel/sud_metrics.json" else "/sys/kernel/sud_metrics"
         in
         match Sysfs.read_file k.Kernel.sysfs ~path with
         | Some body -> print_string body
         | None -> failwith (path ^ ": no such sysfs node"))
     : Fiber.t);
  Engine.run ~max_time:2_000_000_000 eng

(* The observability layer's end-to-end check; the work is
   Ctl.trace_smoke, this just formats the report. *)
let run_trace_smoke out =
  let r = Ctl.trace_smoke ~out in
  Printf.printf "fault %s: detected in %d us, outage %d us\n" r.Ctl.ts_fault
    r.Ctl.ts_detect_us r.Ctl.ts_outage_us;
  Printf.printf "%d spans exported to %s, %d parsed back\n" r.Ctl.ts_exported
    r.Ctl.ts_out r.Ctl.ts_parsed;
  Printf.printf "causal chain %s: %s\n"
    (String.concat " -> " (List.map (fun (c, nm) -> c ^ "/" ^ nm) r.Ctl.ts_chain))
    (if r.Ctl.ts_chain_found then "found" else "MISSING");
  if not r.Ctl.ts_chain_found then exit 1

(* Whole-stack storage snapshot: supervisor, proxy, block layer, device. *)
let run_blk_status () =
  let s = Ctl.blk_status () in
  Printf.printf "%s: %d sectors, supervisor %s (%d restarts, %d detections)\n"
    s.Ctl.bs_name s.Ctl.bs_capacity_sectors s.Ctl.bs_state s.Ctl.bs_restarts
    s.Ctl.bs_detections;
  Printf.printf "proxy: %d in flight, %d retained for replay\n" s.Ctl.bs_inflight
    s.Ctl.bs_retained;
  Printf.printf "cache: %d hits, %d misses, %d merges, %d flush barriers\n"
    s.Ctl.bs_cache_hits s.Ctl.bs_cache_misses s.Ctl.bs_merges s.Ctl.bs_flush_barriers;
  Printf.printf "device: %s\n" s.Ctl.bs_qp_summary;
  Printf.printf "%s\n" s.Ctl.bs_inflight_summary;
  Printf.printf "probe: %d writes ok, %d reads ok, %d io errors\n" s.Ctl.bs_writes_ok
    s.Ctl.bs_reads_ok s.Ctl.bs_io_errors;
  if s.Ctl.bs_io_errors > 0 || s.Ctl.bs_state <> "running" then exit 1

let run_driver_list () =
  let rows = Ctl.driver_list () in
  Printf.printf "%-8s %-6s %-12s %-10s %9s %9s\n" "NAME" "CLASS" "STATE" "STANDBY"
    "RESTARTS" "UPGRADES";
  List.iter
    (fun r ->
       Printf.printf "%-8s %-6s %-12s %-10s %9d %9d\n" r.Ctl.dv_name r.Ctl.dv_class
         r.Ctl.dv_state r.Ctl.dv_standby r.Ctl.dv_restarts r.Ctl.dv_upgrades)
    rows;
  if List.exists (fun r -> r.Ctl.dv_state <> "running") rows then exit 1

let run_driver_status () =
  let s = Ctl.driver_status () in
  Printf.printf "%s (%s): supervisor %s, sud_state %S\n" s.Ctl.ds_name s.Ctl.ds_class
    s.Ctl.ds_state s.Ctl.ds_sysfs_state;
  Printf.printf "standby: %s (%d warmed, %d poisoned)\n" s.Ctl.ds_standby s.Ctl.ds_warmed
    s.Ctl.ds_poisoned;
  Printf.printf "restarts: %d (%d warm swaps)   upgrades: %d   detections: %d\n"
    s.Ctl.ds_restarts s.Ctl.ds_warm_swaps s.Ctl.ds_upgrades s.Ctl.ds_detections;
  if s.Ctl.ds_state <> "running" || s.Ctl.ds_standby <> "ready" then exit 1

let print_swap s =
  (match s.Ctl.sw_error with
   | None -> Printf.printf "%s: done in %d us\n" s.Ctl.sw_op s.Ctl.sw_outage_us
   | Some e -> Printf.printf "%s: FAILED: %s\n" s.Ctl.sw_op e);
  Printf.printf "warm swaps: %d   upgrades: %d   state %s, sud_state %S\n"
    s.Ctl.sw_warm_swaps s.Ctl.sw_upgrades s.Ctl.sw_state s.Ctl.sw_sysfs_state;
  Printf.printf "probe: %d pre-swap pages intact, %d I/O errors\n" s.Ctl.sw_pages_intact
    s.Ctl.sw_io_errors;
  if not (s.Ctl.sw_ok && s.Ctl.sw_io_errors = 0 && s.Ctl.sw_state = "running") then
    exit 1

let run_driver_upgrade () = print_swap (Ctl.driver_upgrade ())
let run_driver_failover () = print_swap (Ctl.driver_failover ())

let run_protocol () =
  Printf.printf "%-22s %-10s %s\n" "Call" "Direction" "Description";
  List.iter
    (fun (n, d, desc) -> Printf.printf "%-22s %-10s %s\n" n d desc)
    Proxy_proto.figure7_sample

(* sudctl check {list,explore,replay,shrink} *)

let run_check_list () =
  Printf.printf "%-22s %-7s %s\n" "SCENARIO" "CANARY" "DESCRIPTION";
  List.iter
    (fun (name, descr, canary) ->
       Printf.printf "%-22s %-7s %s\n" name (if canary then "yes" else "") descr)
    (Ctl.check_scenarios ())

let print_shrink (sh : Check.shrink_report) =
  Printf.printf "shrink: %d -> %d decisions (ratio %.2f) in %d runs, %s\n"
    sh.Check.sh_orig_events sh.sh_min_events sh.sh_ratio sh.sh_tests
    (if sh.sh_still_fails then "still fails" else "NO LONGER FAILS");
  Option.iter (Printf.printf "minimized repro: %s\n") sh.sh_out

let run_check_explore scenario mode budget seed =
  match Ctl.check_explore ~scenario ~mode ~budget ~root_seed:seed () with
  | Error e -> prerr_endline ("sudctl check explore: " ^ e); exit 1
  | Ok h ->
    let ex = h.Check.hr_explore in
    Printf.printf "%s: %s explore, root seed 0x%Lx, %d runs, %d choice points, %.2fs\n"
      ex.Explore.ex_scenario ex.ex_mode seed ex.ex_runs ex.ex_points ex.ex_elapsed_s;
    if not ex.ex_fifo_clean then begin
      Printf.printf "FIFO baseline already fails — not a schedule bug\n";
      exit 1
    end;
    (match ex.ex_found with
     | None -> Printf.printf "no failing schedule found within the budget\n"
     | Some fd ->
       Printf.printf "found on run %d under %s:\n" fd.Explore.fd_run
         (Sched.spec_label fd.fd_spec);
       List.iter (Printf.printf "  violation: %s\n") fd.fd_outcome.Scenario.oc_failures;
       Option.iter (Printf.printf "schedule dumped: %s\n") h.hr_orig_file;
       Option.iter print_shrink h.hr_shrink)

let run_check_replay file times =
  match Ctl.check_replay ~file ~times () with
  | Error e -> prerr_endline ("sudctl check replay: " ^ e); exit 1
  | Ok r ->
    Printf.printf "%s: scenario %s, %d reruns, recorded trace hash 0x%Lx\n" r.Check.rp_file
      r.rp_scenario r.rp_times r.rp_expected_hash;
    List.iteri (fun i h -> Printf.printf "  rerun %d: trace hash 0x%Lx\n" (i + 1) h)
      r.rp_hashes;
    Printf.printf "trace %s, metrics %s\n"
      (if r.rp_trace_ok then "bit-for-bit" else "DIVERGED")
      (if r.rp_metrics_equal then "stable" else "UNSTABLE");
    if not r.rp_ok then exit 1

let run_check_shrink file =
  match Ctl.check_shrink ~file () with
  | Error e -> prerr_endline ("sudctl check shrink: " ^ e); exit 1
  | Ok sh ->
    Printf.printf "%s:\n" sh.Check.sh_scenario;
    print_shrink sh;
    if not sh.sh_still_fails then exit 1

let attack_arg =
  Arg.(value & opt (some string) None & info [ "attack" ] ~docv:"NAME"
         ~doc:"Run only attacks whose name contains $(docv).")

let test_arg =
  Arg.(value & opt (some string) None & info [ "test" ] ~docv:"NAME"
         ~doc:"One of tcp_stream, udp_tx, udp_rx, udp_rr.")

let security_cmd =
  Cmd.v (Cmd.info "security" ~doc:"Run the 5.2 attack scenarios")
    Term.(const run_security $ attack_arg)

let netperf_cmd =
  Cmd.v (Cmd.info "netperf" ~doc:"Run the Figure 8 benchmarks")
    Term.(const run_netperf $ test_arg)

let mappings_cmd =
  Cmd.v (Cmd.info "mappings" ~doc:"Print the e1000 driver's IOMMU mappings (Figure 9)")
    Term.(const run_mappings $ const ())

let files_cmd =
  Cmd.v (Cmd.info "files" ~doc:"Print the sud device files (Figure 6)")
    Term.(const run_files $ const ())

let protocol_cmd =
  Cmd.v (Cmd.info "protocol" ~doc:"Print the upcall/downcall table (Figure 7)")
    Term.(const run_protocol $ const ())

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Dump the machine-readable registry snapshot.")

let out_arg =
  Arg.(value & opt string "traces/trace_smoke.jsonl" & info [ "out" ] ~docv:"FILE"
         ~doc:"Where to write the exported span JSONL.")

let metrics_cmd =
  Cmd.v (Cmd.info "metrics" ~doc:"Run a workload and read /sys/kernel/sud_metrics")
    Term.(const run_metrics $ json_arg)

let blk_cmd =
  Cmd.group (Cmd.info "blk" ~doc:"Storage (sud-blk) administration")
    [ Cmd.v
        (Cmd.info "status"
           ~doc:"Boot a supervised NVMe, probe it, print the stack-wide status")
        Term.(const run_blk_status $ const ()) ]

let driver_cmd =
  Cmd.group (Cmd.info "driver" ~doc:"Driver generation lifecycle")
    [ Cmd.v
        (Cmd.info "list" ~doc:"List supervised drivers with their standby state")
        Term.(const run_driver_list $ const ());
      Cmd.v
        (Cmd.info "status"
           ~doc:"Show one driver's generation machinery: standby, swaps, upgrades")
        Term.(const run_driver_status $ const ());
      Cmd.v
        (Cmd.info "upgrade"
           ~doc:"Live-upgrade a supervised NVMe to its warm standby with zero loss")
        Term.(const run_driver_upgrade $ const ());
      Cmd.v
        (Cmd.info "failover"
           ~doc:"Force a failover through the real fault path (the fire drill)")
        Term.(const run_driver_failover $ const ()) ]

let trace_cmd =
  Cmd.group (Cmd.info "trace" ~doc:"Causal-trace operations")
    [ Cmd.v
        (Cmd.info "smoke"
           ~doc:"Trace an injected DMA violation end to end and verify the span chain")
        Term.(const run_trace_smoke $ out_arg) ]

let scenario_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO"
         ~doc:"Scenario name; see $(b,sudctl check list).")

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"A sud-sched/1 schedule file (JSONL).")

let mode_arg =
  Arg.(value & opt string "random" & info [ "mode" ] ~docv:"MODE"
         ~doc:"Exploration mode: $(b,random) or $(b,bounded).")

let budget_arg =
  Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N"
         ~doc:"Maximum schedules to try.")

let times_arg =
  Arg.(value & opt int 3 & info [ "times" ] ~docv:"N" ~doc:"Number of reruns.")

let seed_conv =
  Arg.conv
    ( (fun s ->
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error (`Msg (Printf.sprintf "%S is not an int64 seed" s))),
      fun ppf v -> Format.fprintf ppf "0x%Lx" v )

let seed_arg =
  Arg.(value & opt seed_conv Fault_inject.default_root & info [ "seed" ] ~docv:"SEED"
         ~doc:"Root seed (accepts 0x-prefixed hex).")

let check_cmd =
  Cmd.group (Cmd.info "check" ~doc:"Schedule exploration, record/replay, shrinking")
    [ Cmd.v
        (Cmd.info "list" ~doc:"List sud-check scenarios (canaries carry seeded bugs)")
        Term.(const run_check_list $ const ());
      Cmd.v
        (Cmd.info "explore"
           ~doc:"Hunt for failing schedules; dump the first hit under traces/ and ddmin it")
        Term.(const run_check_explore $ scenario_arg $ mode_arg $ budget_arg $ seed_arg);
      Cmd.v
        (Cmd.info "replay" ~doc:"Re-execute a recorded schedule and assert bit-for-bit replay")
        Term.(const run_check_replay $ file_arg $ times_arg);
      Cmd.v
        (Cmd.info "shrink" ~doc:"Delta-debug a saved failing schedule to a minimal repro")
        Term.(const run_check_shrink $ file_arg) ]

(* Deprecated flat spelling of `trace smoke`, kept so existing scripts
   migrate gradually. *)
let trace_smoke_alias_cmd =
  Cmd.v
    (Cmd.info "trace-smoke" ~docs:Manpage.s_none
       ~doc:"Deprecated alias for $(b,sudctl trace smoke)")
    Term.(
      const (fun out ->
          prerr_endline "sudctl: trace-smoke is deprecated; use `sudctl trace smoke`";
          run_trace_smoke out)
      $ out_arg)

let () =
  let info = Cmd.info "sudctl" ~version:"1.0" ~doc:"Drive the SUD reproduction" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ security_cmd; netperf_cmd; mappings_cmd; files_cmd; protocol_cmd;
            metrics_cmd; blk_cmd; driver_cmd; trace_cmd; check_cmd;
            trace_smoke_alias_cmd ]))
